//! Bulge-chasing band reduction: the elimination kernel of
//! Algorithm IV.2 (2.5D-Band-to-Band), with the paper's exact index
//! ranges (lines 8–14 of the pseudocode).
//!
//! A symmetric matrix of bandwidth `b` is reduced to bandwidth `h = b/k`
//! by eliminating `n/h` trapezoidal panels via QR; each elimination
//! creates a *bulge* of fill which is chased down the band by `O(n/b)`
//! further QR factorizations. The module exposes:
//!
//! * [`chase_plan`] — the full list of chase operations `(i, j)` with all
//!   index ranges precomputed. Both the sequential executor here and the
//!   distributed executors in `ca-eigen` replay this same plan, so their
//!   numerics are identical; the distributed versions additionally
//!   schedule operations into the paper's pipeline *phases*
//!   (`2i + j = const`, cf. Figure 2) and charge communication.
//! * [`execute_chase`] — apply one chase to a [`BandedSym`] in place:
//!   the zero-copy engine factors the QR block and updates the affected
//!   band strip directly through [`crate::workspace`] arena buffers and
//!   [`crate::view`] views, with no dense-window materialization and no
//!   steady-state heap allocation. The seed's dense-window path is kept
//!   as [`execute_chase_reference`]; the two are bitwise identical (see
//!   DESIGN.md §"kernel engine") and [`set_zero_copy_enabled`] switches
//!   between them at runtime for A/B benchmarking and oracle tests.
//! * [`reduce_band`] — run the whole plan sequentially.

use crate::band::BandedSym;
use crate::gemm::{gemm, gemm_view, gemm_view_hinted, matmul, Trans};
use crate::matrix::Matrix;
use crate::qr::{form_t_view, qr_factor, qr_inplace};
use crate::view::{MatrixView, MatrixViewMut};
use crate::workspace::{with_ws, Workspace};
use std::sync::atomic::{AtomicBool, Ordering};

/// Runtime toggle between the zero-copy chase engine (default) and the
/// seed's dense-window reference path.
static ZERO_COPY: AtomicBool = AtomicBool::new(true);

/// Chase-window executions (all dispatch variants); live only when
/// `CA_TRACE ≥ 1`, otherwise one relaxed load per chase.
static CHASE_WINDOWS: ca_obs::Counter = ca_obs::Counter::new("bulge.chase_windows");

/// Enable or disable the zero-copy chase engine. The reference path
/// produces bitwise identical band matrices and `(U, T)` factors — the
/// toggle exists for A/B benchmarking and for the equivalence oracles
/// in `tests/kernel_equivalence.rs`.
pub fn set_zero_copy_enabled(on: bool) {
    ZERO_COPY.store(on, Ordering::SeqCst);
}

/// Whether the zero-copy chase engine is active.
pub fn zero_copy_enabled() -> bool {
    ZERO_COPY.load(Ordering::SeqCst)
}

/// One bulge-chase operation of Algorithm IV.2, with the paper's index
/// ranges translated to 0-based half-open ranges.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaseOp {
    /// Panel index `i` (1-based, as in the paper).
    pub i: usize,
    /// Chase index `j` (1-based; `j = 1` is the panel elimination).
    pub j: usize,
    /// Rows of the QR block, `I_qr.rs` (global, 0-based, half-open).
    pub qr_rows: (usize, usize),
    /// Columns of the QR block, `I_qr.cs`.
    pub qr_cols: (usize, usize),
    /// Columns of the trailing update, `I_up.cs`.
    pub up_cols: (usize, usize),
    /// Offset `o_v` of the rows of `V` receiving the symmetric
    /// (two-sided) correction: `I_v.rs = o_v..o_v+nr` within `up_cols`.
    pub ov: usize,
}

impl ChaseOp {
    /// Number of rows of the QR block (`nr ≤ b`).
    pub fn nr(&self) -> usize {
        self.qr_rows.1 - self.qr_rows.0
    }

    /// Number of columns of the QR block (`h`).
    pub fn h(&self) -> usize {
        self.qr_cols.1 - self.qr_cols.0
    }

    /// Number of columns of the trailing update (`nc ≤ h + 3b`).
    pub fn nc(&self) -> usize {
        self.up_cols.1 - self.up_cols.0
    }

    /// The pipeline phase of this operation: operations with equal
    /// `2i + j` are independent (they involve disjoint index ranges) and
    /// execute concurrently on different processor groups (Figure 2).
    pub fn phase(&self) -> usize {
        2 * self.i + self.j
    }

    /// Dense-window bounds `[lo, hi)` covering every entry this chase
    /// reads or writes.
    pub fn window(&self) -> (usize, usize) {
        let lo = self.qr_cols.0;
        let hi = self.qr_rows.1.max(self.up_cols.1);
        (lo, hi)
    }
}

/// Enumerate every chase operation for reducing bandwidth `b` to
/// `h = ⌈b/k⌉` on an `n × n` symmetric band matrix, in the sequential
/// (dependency-respecting) order `i`-then-`j` of Algorithm IV.2.
///
/// The paper states the algorithm for `b mod k ≡ 0`; the plan is well
/// defined for any target (strip width `h`, chase step `b`), so
/// non-dividing `k` rounds the target up to `⌈b/k⌉` instead of
/// rejecting the input — what the arbitrary-`n` bandwidth schedules
/// need when halving odd band-widths.
pub fn chase_plan(n: usize, b: usize, k: usize) -> Vec<ChaseOp> {
    assert!(k >= 1 && b >= k, "need 1 ≤ k ≤ b");
    chase_plan_to(n, b, b.div_ceil(k))
}

/// [`chase_plan`] with the target band-width `h` given directly
/// (`1 ≤ h ≤ b < n`): sweep `i` eliminates the `h`-column strip
/// `[(i−1)h, ih)` and chases the resulting bulge in steps of `b`. `h`
/// need not divide `b`.
pub fn chase_plan_to(n: usize, b: usize, h: usize) -> Vec<ChaseOp> {
    assert!(h >= 1 && h <= b, "need 1 ≤ h ≤ b (got h={h}, b={b})");
    assert!(b < n, "bandwidth must be below the matrix dimension");
    let mut ops = Vec::new();
    if h == b {
        return ops; // already at target bandwidth
    }
    // Sweep i eliminates the column strip [(i−1)h, ih). The paper's loop
    // bound `i ∈ [1, n/h − 1]` assumes h | n; the equivalent divisor-free
    // condition is `ih ≤ n − 2` (a strip is needed while some entry below
    // it can sit deeper than h).
    let mut i = 1;
    while i * h <= n - 2 {
        // The paper's bound `j = 1 : ⌊(n − ih − 1)/b⌋` drops the final
        // partial chase of each sweep, stranding tail fill near the
        // bottom-right corner; we instead chase until the QR block hits
        // the matrix end (nr ≥ 2 — a one-row block eliminates nothing
        // and no fill deeper than the band can reach it).
        let mut j = 1;
        loop {
            let oblg = (i - 1) * h + (j - 1) * b;
            let oqr_r = oblg + h;
            if oqr_r > n - 2 {
                break;
            }
            let oqr_c = if j == 1 { oqr_r - h } else { oqr_r - b };
            let oup_c = oqr_c + h;
            let ov = oqr_r - oup_c;
            let nr = (n - oqr_r).min(b);
            let nc = (n - oup_c).min(h + 3 * b);
            ops.push(ChaseOp {
                i,
                j,
                qr_rows: (oqr_r, oqr_r + nr),
                qr_cols: (oqr_c, oqr_c + h),
                up_cols: (oup_c, oup_c + nc),
                ov,
            });
            j += 1;
        }
        i += 1;
    }
    ops
}

/// The dense-window computation of one chase, shared by the sequential
/// and distributed executors: given the symmetric window `d` (with
/// `op.window() = (lo, _)` mapped to local index 0), perform the QR
/// elimination and the two-sided trailing update of Algorithm IV.2
/// lines 16–22 in place.
///
/// Returns the flop-relevant shapes `(nr, h, nc)` so callers can charge
/// costs.
pub fn chase_window_update(d: &mut Matrix, op: &ChaseOp) -> (usize, usize, usize) {
    CHASE_WINDOWS.add(1);
    if zero_copy_enabled() {
        with_ws(|ws| chase_dense_fast(d, op, ws, false));
    } else {
        let _ = chase_window_update_factors_reference(d, op);
    }
    (op.nr(), op.h(), op.nc())
}

/// Like [`chase_window_update`], additionally returning the chase's
/// Householder factors `(U, T)` (with `Q = I − U·T·Uᵀ` acting on the
/// global rows `op.qr_rows`) — the record needed for eigenvector
/// back-transformation.
pub fn chase_window_update_factors(d: &mut Matrix, op: &ChaseOp) -> (Matrix, Matrix) {
    CHASE_WINDOWS.add(1);
    if zero_copy_enabled() {
        with_ws(|ws| chase_dense_fast(d, op, ws, true)).expect("recording chase returns factors")
    } else {
        chase_window_update_factors_reference(d, op)
    }
}

/// The seed's dense-window chase: extract copies of the QR block and
/// update panels with `block`/`set_block`, allocate every temporary.
/// Kept verbatim as the bitwise oracle for the zero-copy engine and as
/// the "before" leg of the stage-time benchmarks.
pub fn chase_window_update_factors_reference(d: &mut Matrix, op: &ChaseOp) -> (Matrix, Matrix) {
    let (lo, _hi) = op.window();
    let nr = op.nr();
    let h = op.h();
    let nc = op.nc();
    let qr_r = op.qr_rows.0 - lo;
    let qr_c = op.qr_cols.0 - lo;
    let up_c = op.up_cols.0 - lo;

    // Line 16: [U, T, R] ← QR(B[I_qr.rs, I_qr.cs]).
    let block = d.block(qr_r, qr_c, nr, h);
    let f = qr_factor(&block, h.clamp(1, 32));
    let kk = f.k();

    // Line 17: B[I_qr.rs, I_qr.cs] = [R; 0] and its mirror.
    let mut r_full = Matrix::zeros(nr, h);
    r_full.set_block(0, 0, &f.r);
    d.set_block(qr_r, qr_c, &r_full);
    d.set_block(qr_c, qr_r, &r_full.transpose());

    // Line 19: W = B[I_up.cs, I_qr.rs]·U·T, V = −W.
    let bup = d.block(up_c, qr_r, nc, nr);
    let bu = matmul(&bup, Trans::N, &f.u, Trans::N);
    let w = matmul(&bu, Trans::N, &f.t, Trans::N); // nc × kk
    let mut v = w.clone();
    v.scale(-1.0);

    // Line 20: V[I_v.rs, :] += ½·U·(Tᵀ·(Uᵀ·W[I_v.rs, :])).
    let w_sym = w.block(op.ov, 0, nr, kk);
    let utw = matmul(&f.u, Trans::T, &w_sym, Trans::N); // kk × kk
    let ttutw = matmul(&f.t, Trans::T, &utw, Trans::N);
    let corr = matmul(&f.u, Trans::N, &ttutw, Trans::N); // nr × kk
    for a in 0..nr {
        for c in 0..kk {
            v.add_to(op.ov + a, c, 0.5 * corr.get(a, c));
        }
    }

    // Lines 21–22: B[I_qr.rs, I_up.cs] += U·Vᵀ; B[I_up.cs, I_qr.rs] += V·Uᵀ.
    let mut upd_rows = d.block(qr_r, up_c, nr, nc);
    gemm(1.0, &f.u, Trans::N, &v, Trans::T, 1.0, &mut upd_rows);
    d.set_block(qr_r, up_c, &upd_rows);
    let mut upd_cols = d.block(up_c, qr_r, nc, nr);
    gemm(1.0, &v, Trans::N, &f.u, Trans::T, 1.0, &mut upd_cols);
    d.set_block(up_c, qr_r, &upd_cols);

    (f.u, f.t)
}

/// Zero-copy dense-window chase: the same arithmetic as
/// [`chase_window_update_factors_reference`] — bitwise identical output
/// — but factoring the QR block in place inside the window and
/// accumulating the rank-2k updates straight into `d`, with every
/// temporary checked out of the arena `ws`. With `record == false` the
/// steady state allocates nothing.
fn chase_dense_fast(
    d: &mut Matrix,
    op: &ChaseOp,
    ws: &mut Workspace,
    record: bool,
) -> Option<(Matrix, Matrix)> {
    let (lo, _hi) = op.window();
    let nr = op.nr();
    let h = op.h();
    let nc = op.nc();
    let ov = op.ov;
    let qr_r = op.qr_rows.0 - lo;
    let qr_c = op.qr_cols.0 - lo;
    let up_c = op.up_cols.0 - lo;
    let kk = nr.min(h);

    // Line 16: [U, T, R] ← QR(B[I_qr.rs, I_qr.cs]), factored in place —
    // afterwards the window block holds R above the diagonal and the
    // reflector tails below it.
    let mut taus = ws.take(kk);
    qr_inplace(&mut d.subview_mut(qr_r, qr_c, nr, h), h.clamp(1, 32), &mut taus, ws);

    let mut u = ws.take(nr * kk);
    {
        let blk = d.subview(qr_r, qr_c, nr, h);
        for j in 0..kk {
            u[j * kk + j] = 1.0;
            for i in j + 1..nr {
                u[i * kk + j] = blk.get(i, j);
            }
        }
    }
    let mut t = ws.take(kk * kk);
    form_t_view(
        &MatrixView::from_slice(&u, nr, kk),
        &taus,
        &mut MatrixViewMut::from_slice(&mut t, kk, kk),
        ws,
    );

    // Line 17: zero the reflector tails so the block reads [R; 0], and
    // mirror it (the QR block sits strictly below the mirror — the two
    // regions are disjoint).
    for i in 1..nr {
        for j in 0..i.min(kk) {
            d.set(qr_r + i, qr_c + j, 0.0);
        }
    }
    for i in 0..nr {
        for j in 0..h {
            let val = d.get(qr_r + i, qr_c + j);
            d.set(qr_c + j, qr_r + i, val);
        }
    }

    // Line 19: W = B[I_up.cs, I_qr.rs]·U·T and V = −W, the negation
    // fused into the copy-out instead of clone-then-scale.
    let mut bu = ws.take(nc * kk);
    gemm_view(
        1.0,
        &d.subview(up_c, qr_r, nc, nr),
        Trans::N,
        &MatrixView::from_slice(&u, nr, kk),
        Trans::N,
        0.0,
        &mut MatrixViewMut::from_slice(&mut bu, nc, kk),
    );
    let mut w = ws.take(nc * kk);
    gemm_view(
        1.0,
        &MatrixView::from_slice(&bu, nc, kk),
        Trans::N,
        &MatrixView::from_slice(&t, kk, kk),
        Trans::N,
        0.0,
        &mut MatrixViewMut::from_slice(&mut w, nc, kk),
    );
    let mut v = ws.take(nc * kk);
    for (vv, &wv) in v.iter_mut().zip(w.iter()) {
        *vv = -wv;
    }

    // Line 20: V[I_v.rs, :] += ½·U·(Tᵀ·(Uᵀ·W[I_v.rs, :])), reading
    // W's symmetric rows through a strided view instead of a copy.
    let mut utw = ws.take(kk * kk);
    gemm_view(
        1.0,
        &MatrixView::from_slice(&u, nr, kk),
        Trans::T,
        &MatrixView::from_slice(&w, nc, kk).sub(ov, 0, nr, kk),
        Trans::N,
        0.0,
        &mut MatrixViewMut::from_slice(&mut utw, kk, kk),
    );
    let mut ttutw = ws.take(kk * kk);
    gemm_view(
        1.0,
        &MatrixView::from_slice(&t, kk, kk),
        Trans::T,
        &MatrixView::from_slice(&utw, kk, kk),
        Trans::N,
        0.0,
        &mut MatrixViewMut::from_slice(&mut ttutw, kk, kk),
    );
    let mut corr = ws.take(nr * kk);
    gemm_view(
        1.0,
        &MatrixView::from_slice(&u, nr, kk),
        Trans::N,
        &MatrixView::from_slice(&ttutw, kk, kk),
        Trans::N,
        0.0,
        &mut MatrixViewMut::from_slice(&mut corr, nr, kk),
    );
    for a in 0..nr {
        for c in 0..kk {
            v[(ov + a) * kk + c] += 0.5 * corr[a * kk + c];
        }
    }

    // Lines 21–22: accumulate B[I_qr.rs, I_up.cs] += U·Vᵀ and
    // B[I_up.cs, I_qr.rs] += V·Uᵀ directly into the window, in the
    // reference's order (the second read-modify-writes the diagonal
    // square the first already touched).
    gemm_view(
        1.0,
        &MatrixView::from_slice(&u, nr, kk),
        Trans::N,
        &MatrixView::from_slice(&v, nc, kk),
        Trans::T,
        1.0,
        &mut d.subview_mut(qr_r, up_c, nr, nc),
    );
    gemm_view(
        1.0,
        &MatrixView::from_slice(&v, nc, kk),
        Trans::N,
        &MatrixView::from_slice(&u, nr, kk),
        Trans::T,
        1.0,
        &mut d.subview_mut(up_c, qr_r, nc, nr),
    );

    let out = if record {
        Some((Matrix::from_vec(nr, kk, u.clone()), Matrix::from_vec(kk, kk, t.clone())))
    } else {
        None
    };
    ws.put(corr);
    ws.put(ttutw);
    ws.put(utw);
    ws.put(v);
    ws.put(w);
    ws.put(bu);
    ws.put(t);
    ws.put(u);
    ws.put(taus);
    out
}

/// Zero-copy banded chase: operate on the band storage directly, never
/// materializing the dense symmetric window. Only the `nr × h` QR block
/// and the `nc × nr` update strip `B[I_up.cs, I_qr.rs]` are gathered
/// (into arena buffers); the rank-2k update runs on the strip and each
/// symmetric pair is written back exactly once, from the orientation
/// whose floating-point accumulation order matches the cell the
/// reference path's `set_window` persists (the globally *lower* one) —
/// see DESIGN.md §"kernel engine" for the case analysis. Bitwise
/// identical to [`execute_chase_reference`].
fn chase_banded_fast(
    bmat: &mut BandedSym,
    op: &ChaseOp,
    ws: &mut Workspace,
    record: bool,
) -> Option<(Matrix, Matrix)> {
    let nr = op.nr();
    let h = op.h();
    let nc = op.nc();
    let ov = op.ov;
    let qr_r0 = op.qr_rows.0;
    let qr_c0 = op.qr_cols.0;
    let up_c0 = op.up_cols.0;
    let kk = nr.min(h);

    // Line 16: gather the QR block from the band (symmetric read, 0.0
    // beyond capacity — exactly the window materialization values) and
    // factor it in the arena.
    let mut blk = ws.take(nr * h);
    for i in 0..nr {
        for j in 0..h {
            blk[i * h + j] = bmat.get(qr_r0 + i, qr_c0 + j);
        }
    }
    let mut taus = ws.take(kk);
    qr_inplace(&mut MatrixViewMut::from_slice(&mut blk, nr, h), h.clamp(1, 32), &mut taus, ws);

    let mut u = ws.take(nr * kk);
    for j in 0..kk {
        u[j * kk + j] = 1.0;
        for i in j + 1..nr {
            u[i * kk + j] = blk[i * h + j];
        }
    }
    let mut t = ws.take(kk * kk);
    form_t_view(
        &MatrixView::from_slice(&u, nr, kk),
        &taus,
        &mut MatrixViewMut::from_slice(&mut t, kk, kk),
        ws,
    );

    // Line 17: write [R; 0] back. Every QR-block entry is globally
    // lower (qr_rows.0 ≥ qr_cols.0 + h), so this covers the mirror too.
    for i in 0..nr {
        for j in 0..h {
            let val = if i < kk && j >= i { blk[i * h + j] } else { 0.0 };
            bmat.set(qr_r0 + i, qr_c0 + j, val);
        }
    }

    // Gather the update strip P = B[I_up.cs, I_qr.rs] (disjoint from the
    // QR block in band storage, so gathering after the R write is safe).
    // Strip cell (r, c) is global (up_c0+r, qr_r0+c); instead of per-cell
    // symmetric `get` (orientation branch + capacity branch each), stream
    // the two triangles straight off the band slab: globally-upper cells
    // (r < ov + c) sit mirror-contiguous along each strip row, lower
    // cells run contiguously down each stored column. Cells beyond the
    // capacity stay at the arena's 0.0 fill — the value `get` returns.
    let cap = bmat.capacity();
    let bw = cap + 1;
    let mut p1 = ws.take(nc * nr);
    {
        let slab = bmat.bands();
        for r in 0..nc.min(ov + nr) {
            let c0 = (r + 1).saturating_sub(ov).min(nr);
            let c1 = nr.min((cap + r + 1).saturating_sub(ov));
            if c0 < c1 {
                let base = (up_c0 + r) * bw + (ov + c0 - r);
                p1[r * nr + c0..r * nr + c1].copy_from_slice(&slab[base..base + (c1 - c0)]);
            }
        }
        for c in 0..nr {
            let r0 = ov + c;
            if r0 >= nc {
                break;
            }
            let r1 = nc.min(r0 + bw);
            let base = (qr_r0 + c) * bw;
            for (d, r) in (r0..r1).enumerate() {
                p1[r * nr + c] = slab[base + d];
            }
        }
    }

    // Line 19: W = P·U·T, V = −W fused.
    let mut bu = ws.take(nc * kk);
    gemm_view(
        1.0,
        &MatrixView::from_slice(&p1, nc, nr),
        Trans::N,
        &MatrixView::from_slice(&u, nr, kk),
        Trans::N,
        0.0,
        &mut MatrixViewMut::from_slice(&mut bu, nc, kk),
    );
    let mut w = ws.take(nc * kk);
    gemm_view(
        1.0,
        &MatrixView::from_slice(&bu, nc, kk),
        Trans::N,
        &MatrixView::from_slice(&t, kk, kk),
        Trans::N,
        0.0,
        &mut MatrixViewMut::from_slice(&mut w, nc, kk),
    );
    let mut v = ws.take(nc * kk);
    for (vv, &wv) in v.iter_mut().zip(w.iter()) {
        *vv = -wv;
    }

    // Line 20: symmetric correction on V's rows ov..ov+nr.
    let mut utw = ws.take(kk * kk);
    gemm_view(
        1.0,
        &MatrixView::from_slice(&u, nr, kk),
        Trans::T,
        &MatrixView::from_slice(&w, nc, kk).sub(ov, 0, nr, kk),
        Trans::N,
        0.0,
        &mut MatrixViewMut::from_slice(&mut utw, kk, kk),
    );
    let mut ttutw = ws.take(kk * kk);
    gemm_view(
        1.0,
        &MatrixView::from_slice(&t, kk, kk),
        Trans::T,
        &MatrixView::from_slice(&utw, kk, kk),
        Trans::N,
        0.0,
        &mut MatrixViewMut::from_slice(&mut ttutw, kk, kk),
    );
    let mut corr = ws.take(nr * kk);
    gemm_view(
        1.0,
        &MatrixView::from_slice(&u, nr, kk),
        Trans::N,
        &MatrixView::from_slice(&ttutw, kk, kk),
        Trans::N,
        0.0,
        &mut MatrixViewMut::from_slice(&mut corr, nr, kk),
    );
    for a in 0..nr {
        for c in 0..kk {
            v[(ov + a) * kk + c] += 0.5 * corr[a * kk + c];
        }
    }

    // Line 21 restricted to the strip: of B[I_qr.rs, I_up.cs] += U·Vᵀ
    // only the diagonal square (columns ov..ov+nr of the update) lands
    // on pairs the strip holds; accumulate it into P's rows ov..ov+nr
    // *before* line 22, reproducing the reference's per-cell addition
    // order on the persisted orientation. The shape hint pins the
    // reference's full-shape (nr × nc × kk) kernel choice.
    {
        let mut p1v = MatrixViewMut::from_slice(&mut p1, nc, nr);
        gemm_view_hinted(
            1.0,
            &MatrixView::from_slice(&u, nr, kk),
            Trans::N,
            &MatrixView::from_slice(&v, nc, kk).sub(ov, 0, nr, kk),
            Trans::T,
            1.0,
            &mut p1v.sub_mut(ov, 0, nr, nr),
            (nr, nc, kk),
        );
    }
    // Line 22: B[I_up.cs, I_qr.rs] += V·Uᵀ, the strip's own orientation.
    gemm_view(
        1.0,
        &MatrixView::from_slice(&v, nc, kk),
        Trans::N,
        &MatrixView::from_slice(&u, nr, kk),
        Trans::T,
        1.0,
        &mut MatrixViewMut::from_slice(&mut p1, nc, nr),
    );

    // Write each symmetric pair back exactly once:
    // * rows r < ov are globally upper with no mirror in the strip —
    //   single-term cells, bitwise equal to the lower value the
    //   reference persists;
    // * rows r ≥ ov are lower iff r − ov ≥ c; the lower cell carries the
    //   reference's (line 21 then line 22) accumulation order, its upper
    //   mirror the swapped order — skip the mirror.
    //
    // As in the gather, stream straight onto the band slab (mirror rows
    // for r < ov, stored columns for the lower triangle), maintaining
    // `set`'s scale high-water and its fill-analysis check: a value the
    // capacity cannot hold must be negligible against the scale.
    {
        let (slab, scale) = bmat.bands_mut_scale();
        let mut smax = *scale;
        for r in 0..ov.min(nc) {
            let c1 = nr.min((cap + r + 1).saturating_sub(ov));
            let base = (up_c0 + r) * bw + (ov - r);
            for (c, &vv) in p1[r * nr..r * nr + c1].iter().enumerate() {
                if vv.abs() > smax {
                    smax = vv.abs();
                }
                slab[base + c] = vv;
            }
            for (c, &vv) in p1[r * nr + c1..r * nr + nr].iter().enumerate() {
                assert!(
                    vv.abs() < 1e-9 * smax.max(1.0),
                    "write of {vv:.3e} outside band capacity at ({},{}): fill analysis violated",
                    up_c0 + r,
                    qr_r0 + c1 + c,
                );
            }
        }
        for c in 0..nr {
            let r0 = ov + c;
            if r0 >= nc {
                break;
            }
            let r1 = nc.min(r0 + bw);
            let base = (qr_r0 + c) * bw;
            for (d, r) in (r0..r1).enumerate() {
                let vv = p1[r * nr + c];
                if vv.abs() > smax {
                    smax = vv.abs();
                }
                slab[base + d] = vv;
            }
            for r in r1..nc {
                let vv = p1[r * nr + c];
                assert!(
                    vv.abs() < 1e-9 * smax.max(1.0),
                    "write of {vv:.3e} outside band capacity at ({},{}): fill analysis violated",
                    up_c0 + r,
                    qr_r0 + c,
                );
            }
        }
        *scale = smax;
    }

    let out = if record {
        Some((Matrix::from_vec(nr, kk, u.clone()), Matrix::from_vec(kk, kk, t.clone())))
    } else {
        None
    };
    ws.put(corr);
    ws.put(ttutw);
    ws.put(utw);
    ws.put(v);
    ws.put(w);
    ws.put(bu);
    ws.put(p1);
    ws.put(t);
    ws.put(u);
    ws.put(taus);
    ws.put(blk);
    out
}

/// Apply one chase operation to a banded matrix. The zero-copy engine
/// updates the band in place through arena-backed strips; with the
/// engine disabled this falls back to [`execute_chase_reference`]
/// (bitwise identical results either way).
pub fn execute_chase(bmat: &mut BandedSym, op: &ChaseOp) {
    CHASE_WINDOWS.add(1);
    if zero_copy_enabled() {
        with_ws(|ws| chase_banded_fast(bmat, op, ws, false));
    } else {
        execute_chase_reference(bmat, op);
    }
}

/// The seed's chase executor: materialize the dense symmetric window,
/// update it, write the lower triangle back.
pub fn execute_chase_reference(bmat: &mut BandedSym, op: &ChaseOp) {
    let (lo, hi) = op.window();
    let mut d = bmat.window(lo, hi);
    let _ = chase_window_update_factors_reference(&mut d, op);
    bmat.set_window(lo, &d);
}

/// [`execute_chase`], additionally returning the chase's Householder
/// factors `(U, T)` acting on global rows `op.qr_rows`.
pub fn execute_chase_recording(bmat: &mut BandedSym, op: &ChaseOp) -> (Matrix, Matrix) {
    CHASE_WINDOWS.add(1);
    if zero_copy_enabled() {
        with_ws(|ws| chase_banded_fast(bmat, op, ws, true)).expect("recording chase returns factors")
    } else {
        execute_chase_recording_reference(bmat, op)
    }
}

/// Reference-path [`execute_chase_recording`] (dense window, allocating).
pub fn execute_chase_recording_reference(bmat: &mut BandedSym, op: &ChaseOp) -> (Matrix, Matrix) {
    let (lo, hi) = op.window();
    let mut d = bmat.window(lo, hi);
    let factors = chase_window_update_factors_reference(&mut d, op);
    bmat.set_window(lo, &d);
    factors
}

/// Sequentially reduce a symmetric banded matrix from bandwidth `b` to
/// `⌈b/k⌉` (Algorithm IV.2 executed on one processor). The matrix's
/// fill capacity must be at least `min(n−1, 2b)`.
pub fn reduce_band(bmat: &mut BandedSym, k: usize) {
    reduce_band_to(bmat, bmat.bandwidth().div_ceil(k));
}

/// Sequentially reduce a symmetric banded matrix to the explicit target
/// bandwidth `h` (`1 ≤ h ≤ b`); `h` need not divide the current
/// bandwidth.
pub fn reduce_band_to(bmat: &mut BandedSym, h: usize) {
    let n = bmat.n();
    let b = bmat.bandwidth();
    assert!(
        bmat.capacity() >= (2 * b).min(n.saturating_sub(1)),
        "capacity {} too small for bulge fill of band {}",
        bmat.capacity(),
        b
    );
    for op in chase_plan_to(n, b, h) {
        execute_chase(bmat, &op);
    }
    bmat.set_bandwidth(h);
}

/// Reduce a symmetric banded matrix straight to tridiagonal form with
/// the **fused rank-1 sweep**: the same `h = 1` chase geometry as
/// `reduce_band_to(bmat, 1)` (identical [`chase_plan_to`] operations,
/// identical fill pattern), but with the per-chase work — Householder
/// generation, the two-sided rank-1 update, the symmetric correction —
/// fused into two passes over the band slab's contiguous runs.
///
/// At `h = 1` every chase is rank one, and the generic engine's
/// strengths invert into overheads: the `nc × nr` strip gather/write-
/// back doubles memory traffic, the GEMM calls degenerate to
/// matrix–vector shapes below the blocked kernels' profitable sizes,
/// and the per-cell fill/scale bookkeeping costs as much as the update
/// arithmetic. The fused kernel reads each band cell once (directly in
/// slab storage: mirror rows for the globally-upper part of the strip,
/// stored columns for the lower part), accumulates `P·u` on the fly,
/// and applies `ΔP = v·uᵀ + [rows ov..ov+nr] u·vᵀ` in the same two
/// loop shapes. The band's scale high-water is raised once per sweep to
/// the Frobenius norm (invariant under the orthogonal similarity, so it
/// bounds every intermediate entry) instead of per cell.
///
/// Unlike the zero-copy/reference engine pair this kernel is **not**
/// bitwise-matched to `reduce_band_to`; it is validated against the
/// spectrum oracles (moments, Sturm bisection, QL) in this module's and
/// `tridiag`'s tests.
pub fn sweep_to_tridiagonal(bmat: &mut BandedSym) {
    let _ = sweep_impl(bmat, false);
}

/// [`sweep_to_tridiagonal`], additionally returning every non-trivial
/// Householder reflector as `(row0, u, τ)` — `Q_op = I − τ·u·uᵀ` acting
/// on global rows `row0 .. row0 + u.len()` — in application order, the
/// record eigenvector back-transformation replays in reverse.
pub fn sweep_to_tridiagonal_recording(bmat: &mut BandedSym) -> Vec<(usize, Vec<f64>, f64)> {
    sweep_impl(bmat, true)
}

fn sweep_impl(bmat: &mut BandedSym, record: bool) -> Vec<(usize, Vec<f64>, f64)> {
    let n = bmat.n();
    let b = bmat.bandwidth();
    let cap = bmat.capacity();
    assert!(
        cap >= (2 * b).min(n.saturating_sub(1)),
        "capacity {cap} too small for bulge fill of band {b}"
    );
    let mut reflectors = Vec::new();
    if b <= 1 {
        return reflectors;
    }
    let plan = chase_plan_to(n, b, 1);
    let bw = cap + 1;
    let mut u = vec![0.0f64; b];
    let mut pu = vec![0.0f64; 1 + 3 * b];
    let mut v = vec![0.0f64; 1 + 3 * b];

    {
        let (slab, scale) = bmat.bands_mut_scale();
        // ‖A‖_F bounds every entry of every orthogonal similarity of A:
        // one high-water raise covers the whole sweep.
        let mut fro2 = 0.0f64;
        for j in 0..n {
            let col = &slab[j * bw..j * bw + bw.min(n - j)];
            fro2 += col[0] * col[0];
            for &x in &col[1..] {
                fro2 += 2.0 * x * x;
            }
        }
        let fro = fro2.sqrt();
        if fro > *scale {
            *scale = fro;
        }

        for op in &plan {
            if let Some((row0, tau)) = fused_op(slab, cap, op, &mut u, &mut pu, &mut v) {
                if record {
                    reflectors.push((row0, u[..op.nr()].to_vec(), tau));
                }
            }
        }
    }
    bmat.set_bandwidth(1);
    reflectors
}

/// One fused rank-1 chase on the raw band slab (`cap + 1` stored
/// diagonals per column). Returns `(row0, τ)` when the op did work
/// (with the reflector left in `u[..op.nr()]`), `None` when its column
/// was already eliminated. `u`/`pu`/`v` are caller-provided scratch of
/// lengths ≥ `b`, `1 + 3b`, `1 + 3b`.
fn fused_op(
    slab: &mut [f64],
    cap: usize,
    op: &ChaseOp,
    u: &mut [f64],
    pu: &mut [f64],
    v: &mut [f64],
) -> Option<(usize, f64)> {
    let bw = cap + 1;
    let nr = op.nr();
    let nc = op.nc();
    let ov = op.ov;
    let (qr_r0, qr_c0, up_c0) = (op.qr_rows.0, op.qr_cols.0, op.up_cols.0);
    if nr < 2 {
        return None;
    }

    // Householder annihilating the length-nr column at
    // (qr_r0, qr_c0) — contiguous in the slab. Same convention
    // as qr::house_gen: u[0] = 1, (I − τuuᵀ)x = βe₁.
    let cbase = qr_c0 * bw + (qr_r0 - qr_c0);
    let alpha = slab[cbase];
    let sigma2: f64 = slab[cbase + 1..cbase + nr].iter().map(|x| x * x).sum();
    if sigma2 == 0.0 {
        return None; // already eliminated; reflector is identity
    }
    let norm = (alpha * alpha + sigma2).sqrt();
    let beta = if alpha >= 0.0 { -norm } else { norm };
    let tau = (beta - alpha) / beta;
    let inv = 1.0 / (alpha - beta);
    u[0] = 1.0;
    for (ui, x) in u[1..nr].iter_mut().zip(&slab[cbase + 1..cbase + nr]) {
        *ui = *x * inv;
    }
    slab[cbase] = beta;
    slab[cbase + 1..cbase + nr].fill(0.0);

    // P·u over the strip P = B[I_up.cs, I_qr.rs], streaming the
    // slab's two contiguous layouts: strip cell (r, c), global
    // (up_c0 + r, qr_r0 + c), lives mirror-contiguous in row
    // up_c0 + r when globally upper (r < ov + c) and contiguous
    // in stored column qr_r0 + c when lower. Cells beyond the
    // capacity are the (negligible, dropped) fill the generic
    // engine also discards.
    pu[..nc].fill(0.0);
    for (r, pur) in pu[..nc.min(ov + nr)].iter_mut().enumerate() {
        let c0 = (r + 1).saturating_sub(ov).min(nr);
        let c1 = nr.min((cap + r + 1).saturating_sub(ov));
        if c0 < c1 {
            let base = (up_c0 + r) * bw + (ov + c0 - r);
            let mut acc = 0.0f64;
            for (s, uc) in slab[base..base + (c1 - c0)].iter().zip(&u[c0..c1]) {
                acc += s * uc;
            }
            *pur += acc;
        }
    }
    for (c, &uc) in u[..nr].iter().enumerate() {
        let r0 = ov + c;
        if r0 >= nc {
            break;
        }
        let r1 = nc.min(r0 + bw);
        let base = (qr_r0 + c) * bw;
        for (s, pur) in slab[base..base + (r1 - r0)].iter().zip(&mut pu[r0..r1]) {
            *pur += uc * s;
        }
    }

    // v = −τ·P·u + ½τ²(uᵀ(P·u)_sym)·u on the symmetric rows:
    // the rank-1 specialization of lines 19–20.
    let swsym: f64 = u[..nr].iter().zip(&pu[ov..ov + nr]).map(|(a, b)| a * b).sum();
    for (vr, pur) in v[..nc].iter_mut().zip(&pu[..nc]) {
        *vr = -tau * pur;
    }
    let half = 0.5 * tau * tau * swsym;
    for (vr, uc) in v[ov..ov + nr].iter_mut().zip(&u[..nr]) {
        *vr += half * uc;
    }

    // ΔP(r, c) = v[r]·u[c] + (ov ≤ r < ov + nr) u[r−ov]·v[ov+c]
    // (lines 21–22 restricted to the strip), written through the
    // same two slab layouts as the gather — with one difference from
    // the gather: strip rows ov..ov+nr and columns 0..nr form the
    // symmetric square, whose upper-triangle strip cells alias the
    // lower-triangle ones in band storage (strip (r, c) and
    // (ov + c, r − ov) are the same stored cell). The delta there is
    // symmetric, so apply it once through the lower orientation: the
    // mirror-row pass covers only rows r < ov, which have no aliased
    // partner in the strip.
    for r in 0..ov.min(nc) {
        let c1 = nr.min((cap + r + 1).saturating_sub(ov));
        if c1 == 0 {
            continue;
        }
        let base = (up_c0 + r) * bw + (ov - r);
        let vr = v[r];
        for (s, uc) in slab[base..base + c1].iter_mut().zip(&u[..c1]) {
            *s += vr * uc;
        }
    }
    for (c, &uc) in u[..nr].iter().enumerate() {
        let r0 = ov + c;
        if r0 >= nc {
            break;
        }
        let r1 = nc.min(r0 + bw);
        let base = (qr_r0 + c) * bw;
        let sym_end = (ov + nr).min(r1);
        let vc = v[ov + c];
        let mut idx = 0;
        for r in r0..sym_end {
            slab[base + idx] += v[r] * uc + u[r - ov] * vc;
            idx += 1;
        }
        for r in sym_end..r1 {
            slab[base + idx] += v[r] * uc;
            idx += 1;
        }
    }

    Some((qr_r0, tau))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Orthogonal-similarity invariants: trace, ‖·‖_F, trace(A³).
    fn moments(a: &Matrix) -> (f64, f64, f64) {
        let n = a.rows();
        let tr: f64 = (0..n).map(|i| a.get(i, i)).sum();
        let fro = a.norm_fro();
        let a2 = matmul(a, Trans::N, a, Trans::N);
        let a3 = matmul(&a2, Trans::N, a, Trans::N);
        let tr3: f64 = (0..n).map(|i| a3.get(i, i)).sum();
        (tr, fro, tr3)
    }

    fn check_reduction(n: usize, b: usize, k: usize, seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let dense = gen::random_banded(&mut rng, n, b);
        let (t0, f0, m0) = moments(&dense);
        let cap = (2 * b).min(n - 1);
        let mut bm = BandedSym::from_dense(&dense, b, cap);
        reduce_band(&mut bm, k);
        let h = b / k;
        assert!(
            bm.measured_bandwidth(1e-10) <= h,
            "n={n} b={b} k={k}: bandwidth {} > target {h}",
            bm.measured_bandwidth(1e-10)
        );
        let out = bm.to_dense();
        let (t1, f1, m1) = moments(&out);
        let scale = f0.max(1.0);
        assert!((t0 - t1).abs() < 1e-9 * scale, "trace drifted: {t0} vs {t1}");
        assert!((f0 - f1).abs() < 1e-9 * scale, "‖A‖_F drifted: {f0} vs {f1}");
        assert!(
            (m0 - m1).abs() < 1e-7 * scale.powi(3),
            "tr(A³) drifted: {m0} vs {m1}"
        );
    }

    fn check_reduction_to(n: usize, b: usize, h: usize, seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let dense = gen::random_banded(&mut rng, n, b);
        let (t0, f0, m0) = moments(&dense);
        let cap = (2 * b).min(n - 1);
        let mut bm = BandedSym::from_dense(&dense, b, cap);
        reduce_band_to(&mut bm, h);
        assert!(
            bm.measured_bandwidth(1e-10) <= h,
            "n={n} b={b} h={h}: bandwidth {} > target {h}",
            bm.measured_bandwidth(1e-10)
        );
        let out = bm.to_dense();
        let (t1, f1, m1) = moments(&out);
        let scale = f0.max(1.0);
        assert!((t0 - t1).abs() < 1e-9 * scale, "trace drifted: {t0} vs {t1}");
        assert!((f0 - f1).abs() < 1e-9 * scale, "‖A‖_F drifted: {f0} vs {f1}");
        assert!(
            (m0 - m1).abs() < 1e-7 * scale.powi(3),
            "tr(A³) drifted: {m0} vs {m1}"
        );
    }

    #[test]
    fn halve_small_band() {
        check_reduction(32, 4, 2, 40);
    }

    #[test]
    fn non_dividing_target_bandwidth() {
        // h ∤ b: what the arbitrary-n schedules produce when halving odd
        // band-widths (b → ⌈b/2⌉) or trimming clamped ones.
        for (n, b, h, seed) in [
            (33usize, 7usize, 4usize, 50u64),
            (41, 5, 3, 51),
            (29, 9, 5, 52),
            (37, 3, 2, 53),
            (40, 6, 4, 54),
            (23, 11, 3, 55),
        ] {
            check_reduction_to(n, b, h, seed);
        }
    }

    #[test]
    fn rounding_k_matches_explicit_target() {
        // chase_plan with k ∤ b rounds the target up to ⌈b/k⌉.
        let plan_k = chase_plan(35, 7, 2);
        let plan_h = chase_plan_to(35, 7, 4);
        assert_eq!(plan_k, plan_h);
    }

    #[test]
    fn quarter_band() {
        check_reduction(48, 8, 4, 41);
    }

    #[test]
    fn reduce_to_tridiagonal() {
        check_reduction(30, 6, 6, 42);
    }

    #[test]
    fn non_divisible_dimension() {
        check_reduction(37, 6, 2, 43);
    }

    #[test]
    fn band_two_to_one() {
        check_reduction(25, 2, 2, 44);
    }

    #[test]
    fn larger_problem() {
        check_reduction(96, 12, 3, 45);
    }

    #[test]
    fn h_equals_one_plan_eliminates_every_column_strip() {
        // k = b gives h = 1 (direct tridiagonalization): every column
        // below the first sub-diagonal must be covered by some QR block.
        let (n, b) = (24usize, 4usize);
        let plan = chase_plan(n, b, b);
        let mut covered = vec![false; n];
        for op in &plan {
            for c in op.qr_cols.0..op.qr_cols.1 {
                covered[c] = true;
            }
        }
        // Columns 0..n−2 all need an elimination pass.
        for (c, &cov) in covered.iter().enumerate().take(n - 2) {
            assert!(cov, "column {c} never eliminated");
        }
    }

    #[test]
    fn execute_chase_recording_matches_plain_execution() {
        let mut rng = StdRng::seed_from_u64(49);
        let dense = gen::random_banded(&mut rng, 30, 4);
        let mut a = BandedSym::from_dense(&dense, 4, 8);
        let mut b = BandedSym::from_dense(&dense, 4, 8);
        for op in chase_plan(30, 4, 2) {
            execute_chase(&mut a, &op);
            let (u, t) = execute_chase_recording(&mut b, &op);
            assert_eq!(u.rows(), op.nr());
            assert!(t.rows() >= 1);
        }
        assert_eq!(a, b, "recording must not change the numerics");
    }

    #[test]
    fn plan_is_empty_when_k_is_one() {
        assert!(chase_plan(20, 4, 1).is_empty());
    }

    #[test]
    fn plan_phases_match_figure2() {
        // Figure 2 (k = 2): iterations {(3,1),(2,3),(1,5)} are concurrent,
        // as are {(3,2),(2,4),(1,6)} — i.e. equal 2i + j.
        for (a, b) in [((3, 1), (2, 3)), ((2, 3), (1, 5)), ((3, 2), (2, 4)), ((2, 4), (1, 6))] {
            assert_eq!(2 * a.0 + a.1, 2 * b.0 + b.1);
        }
        // And the plan generator assigns those phases.
        let plan = chase_plan(64, 8, 2);
        for op in &plan {
            assert_eq!(op.phase(), 2 * op.i + op.j);
        }
    }

    #[test]
    fn plan_ops_within_bounds() {
        let n = 50;
        for (b, k) in [(4, 2), (8, 4), (10, 2), (6, 3)] {
            for op in chase_plan(n, b, k) {
                assert!(op.qr_rows.1 <= n);
                assert!(op.qr_cols.1 <= n);
                assert!(op.up_cols.1 <= n);
                assert!(op.nr() <= b);
                assert_eq!(op.h(), b / k);
                assert!(op.nc() <= b / k + 3 * b);
                assert_eq!(op.ov, op.qr_rows.0 - op.up_cols.0);
                // QR block sits strictly below the target band...
                assert!(op.qr_rows.0 >= op.qr_cols.0 + b / k);
            }
        }
    }

    #[test]
    fn fused_op_tracks_generic_chase_op_by_op() {
        // Drive the fused kernel and the generic engine through the same
        // h = 1 plan, comparing the dense band after every operation —
        // pinpoints any geometric disagreement to the first bad op.
        let (n, b) = (18usize, 3usize);
        let mut rng = StdRng::seed_from_u64(67);
        let dense = gen::random_banded(&mut rng, n, b);
        let cap = (2 * b).min(n - 1);
        let mut fused = BandedSym::from_dense(&dense, b, cap);
        let mut generic = BandedSym::from_dense(&dense, b, cap);
        let scale = dense.norm_fro().max(1.0);
        let (mut u, mut pu, mut v) = (vec![0.0; b], vec![0.0; 1 + 3 * b], vec![0.0; 1 + 3 * b]);
        for (idx, op) in chase_plan_to(n, b, 1).iter().enumerate() {
            execute_chase(&mut generic, op);
            {
                let (slab, _) = fused.bands_mut_scale();
                fused_op(slab, cap, op, &mut u, &mut pu, &mut v);
            }
            let diff = fused.to_dense().max_diff(&generic.to_dense());
            assert!(
                diff < 1e-12 * scale,
                "op {idx} ({op:?}): fused diverged from generic by {diff}"
            );
        }
    }

    #[test]
    fn fused_sweep_matches_generic_engine_spectrum() {
        // Same plan, different kernel: the fused rank-1 sweep must land
        // on the same tridiagonal spectrum as reduce_band_to(·, 1).
        for (n, b, seed) in [(40usize, 6usize, 60u64), (33, 7, 61), (48, 12, 62), (21, 2, 63)] {
            let mut rng = StdRng::seed_from_u64(seed);
            let dense = gen::random_banded(&mut rng, n, b);
            let cap = (2 * b).min(n - 1);
            let mut fused = BandedSym::from_dense(&dense, b, cap);
            let mut generic = BandedSym::from_dense(&dense, b, cap);
            sweep_to_tridiagonal(&mut fused);
            reduce_band_to(&mut generic, 1);
            assert_eq!(fused.bandwidth(), 1);
            assert!(fused.measured_bandwidth(1e-10) <= 1);
            let (df, ef) = fused.tridiagonal();
            let (dg, eg) = generic.tridiagonal();
            let sf = crate::tridiag::tridiag_eigenvalues(&df, &ef);
            let sg = crate::tridiag::tridiag_eigenvalues(&dg, &eg);
            let dist = crate::tridiag::spectrum_distance(&sf, &sg);
            assert!(dist < 1e-9 * dense.norm_fro().max(1.0), "n={n} b={b}: spectra differ by {dist}");
        }
    }

    #[test]
    fn fused_sweep_preserves_moments() {
        let mut rng = StdRng::seed_from_u64(64);
        let dense = gen::random_banded(&mut rng, 50, 9);
        let (t0, f0, m0) = moments(&dense);
        let mut bm = BandedSym::from_dense(&dense, 9, 18);
        sweep_to_tridiagonal(&mut bm);
        let (t1, f1, m1) = moments(&bm.to_dense());
        let scale = f0.max(1.0);
        assert!((t0 - t1).abs() < 1e-9 * scale);
        assert!((f0 - f1).abs() < 1e-9 * scale);
        assert!((m0 - m1).abs() < 1e-7 * scale.powi(3));
    }

    #[test]
    fn fused_sweep_recording_reconstructs_similarity() {
        // Accumulate the recorded reflectors into dense Q and verify
        // Qᵀ·A·Q equals the tridiagonal result: the record is exactly
        // the transform the sweep applied.
        let (n, b) = (26usize, 5usize);
        let mut rng = StdRng::seed_from_u64(65);
        let dense = gen::random_banded(&mut rng, n, b);
        let mut bm = BandedSym::from_dense(&dense, b, 2 * b);
        let refl = sweep_to_tridiagonal_recording(&mut bm);
        assert!(!refl.is_empty());
        // Q = H₁·H₂·…  (application order: Hᵢᵀ…H₁ᵀ·A·H₁…Hᵢ).
        let mut q = Matrix::identity(n);
        for (row0, u, tau) in &refl {
            // q ← q·(I − τuuᵀ) on columns row0..row0+len.
            let len = u.len();
            for r in 0..n {
                let row = q.row_mut(r);
                let dot: f64 = row[*row0..row0 + len].iter().zip(u).map(|(a, b)| a * b).sum();
                for (x, uc) in row[*row0..row0 + len].iter_mut().zip(u) {
                    *x -= tau * dot * uc;
                }
            }
        }
        let qtaq = matmul(&matmul(&q, Trans::T, &dense, Trans::N), Trans::N, &q, Trans::N);
        let diff = qtaq.max_diff(&bm.to_dense());
        assert!(diff < 1e-9 * dense.norm_fro().max(1.0), "QᵀAQ ≠ T: {diff}");
        // And the recording run equals the plain run bitwise.
        let mut plain = BandedSym::from_dense(&dense, b, 2 * b);
        sweep_to_tridiagonal(&mut plain);
        assert_eq!(plain, bm);
    }

    #[test]
    fn fused_sweep_noop_on_tridiagonal_input() {
        let mut rng = StdRng::seed_from_u64(66);
        let dense = gen::random_banded(&mut rng, 12, 1);
        let mut bm = BandedSym::from_dense(&dense, 1, 4);
        let before = bm.clone();
        assert!(sweep_to_tridiagonal_recording(&mut bm).is_empty());
        assert_eq!(bm, before);
    }

    #[test]
    fn pipelined_phase_order_matches_sequential_order() {
        // Algorithm IV.2 executes iterations with equal 2i + j
        // concurrently on different processor groups (Figure 2). That
        // schedule is legal iff replaying the plan sorted by phase
        // (ties broken by ascending i, matching the pipeline's
        // adjacent-group handoff order) yields the *bitwise identical*
        // matrix as the sequential i-then-j order — any true data
        // conflict between same-phase ops would reorder floating-point
        // operations and change low bits.
        for (n, b, k, seed) in [(64usize, 8usize, 2usize, 46u64), (60, 6, 3, 47), (48, 4, 4, 48)] {
            let mut rng = StdRng::seed_from_u64(seed);
            let dense = gen::random_banded(&mut rng, n, b);
            let cap = (2 * b).min(n - 1);

            let mut seq = BandedSym::from_dense(&dense, b, cap);
            let plan = chase_plan(n, b, k);
            for op in &plan {
                execute_chase(&mut seq, op);
            }

            let mut piped = BandedSym::from_dense(&dense, b, cap);
            let mut sorted: Vec<&ChaseOp> = plan.iter().collect();
            sorted.sort_by_key(|op| (op.phase(), op.i));
            for op in sorted {
                execute_chase(&mut piped, op);
            }

            assert_eq!(
                seq, piped,
                "n={n} b={b} k={k}: pipelined phase order diverged from sequential order"
            );
        }
    }
}
