//! Dense row-major matrices with block copy, transpose and norm helpers.

use std::fmt;

/// A dense `rows × cols` matrix of `f64` in row-major order.
///
/// This is deliberately a simple owned container: the distributed layers
/// move explicit sub-blocks between virtual processors, so cheap block
/// extraction/insertion matters more than zero-copy views.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Zero matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Identity matrix of order `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Build from a row-major data vector.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "data length must be rows*cols");
        Self { rows, cols, data }
    }

    /// Build from a closure `f(i, j)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Self { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored words.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the matrix has no entries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Element access.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j]
    }

    /// Element assignment.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j] = v;
    }

    /// In-place element update.
    #[inline]
    pub fn add_to(&mut self, i: usize, j: usize, v: f64) {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j] += v;
    }

    /// Row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Row `i` as a mutable slice.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Underlying row-major data.
    #[inline]
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable underlying row-major data.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Copy of the sub-block `rows r0..r0+nr`, `cols c0..c0+nc`.
    pub fn block(&self, r0: usize, c0: usize, nr: usize, nc: usize) -> Matrix {
        assert!(r0 + nr <= self.rows && c0 + nc <= self.cols, "block out of range");
        let mut out = Matrix::zeros(nr, nc);
        for i in 0..nr {
            let src = &self.data[(r0 + i) * self.cols + c0..(r0 + i) * self.cols + c0 + nc];
            out.row_mut(i).copy_from_slice(src);
        }
        out
    }

    /// Write `b` into the sub-block starting at `(r0, c0)`.
    pub fn set_block(&mut self, r0: usize, c0: usize, b: &Matrix) {
        assert!(r0 + b.rows <= self.rows && c0 + b.cols <= self.cols, "block out of range");
        for i in 0..b.rows {
            let dst_start = (r0 + i) * self.cols + c0;
            self.data[dst_start..dst_start + b.cols].copy_from_slice(b.row(i));
        }
    }

    /// Add `alpha * b` into the sub-block starting at `(r0, c0)`.
    pub fn add_block(&mut self, r0: usize, c0: usize, b: &Matrix, alpha: f64) {
        assert!(r0 + b.rows <= self.rows && c0 + b.cols <= self.cols, "block out of range");
        for i in 0..b.rows {
            let dst_start = (r0 + i) * self.cols + c0;
            for (d, s) in self.data[dst_start..dst_start + b.cols].iter_mut().zip(b.row(i)) {
                *d += alpha * s;
            }
        }
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.set(j, i, self.get(i, j));
            }
        }
        out
    }

    /// Scale every entry by `alpha`.
    pub fn scale(&mut self, alpha: f64) {
        for v in &mut self.data {
            *v *= alpha;
        }
    }

    /// `self += alpha * other` (same shape).
    pub fn axpy(&mut self, alpha: f64, other: &Matrix) {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        for (d, s) in self.data.iter_mut().zip(&other.data) {
            *d += alpha * s;
        }
    }

    /// Frobenius norm.
    pub fn norm_fro(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Max absolute entry.
    pub fn norm_max(&self) -> f64 {
        self.data.iter().fold(0.0, |a, v| a.max(v.abs()))
    }

    /// Maximum absolute difference to `other` (same shape).
    pub fn max_diff(&self, other: &Matrix) -> f64 {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        self.data
            .iter()
            .zip(&other.data)
            .fold(0.0, |a, (x, y)| a.max((x - y).abs()))
    }

    /// Maximum deviation from symmetry, `max |A - Aᵀ|`.
    pub fn asymmetry(&self) -> f64 {
        assert_eq!(self.rows, self.cols);
        let mut worst = 0.0f64;
        for i in 0..self.rows {
            for j in 0..i {
                worst = worst.max((self.get(i, j) - self.get(j, i)).abs());
            }
        }
        worst
    }

    /// Force exact symmetry by averaging with the transpose.
    pub fn symmetrize(&mut self) {
        assert_eq!(self.rows, self.cols);
        for i in 0..self.rows {
            for j in 0..i {
                let v = 0.5 * (self.get(i, j) + self.get(j, i));
                self.set(i, j, v);
                self.set(j, i, v);
            }
        }
    }

    /// Bandwidth of a square matrix: the largest `|i − j|` with
    /// `|A[i,j]| > tol`.
    pub fn bandwidth(&self, tol: f64) -> usize {
        assert_eq!(self.rows, self.cols);
        let mut bw = 0;
        for i in 0..self.rows {
            for j in 0..self.cols {
                if self.get(i, j).abs() > tol {
                    bw = bw.max(i.abs_diff(j));
                }
            }
        }
        bw
    }

    /// Stack `blocks` vertically (all must share the column count).
    pub fn vstack(blocks: &[&Matrix]) -> Matrix {
        assert!(!blocks.is_empty());
        let cols = blocks[0].cols;
        let rows: usize = blocks.iter().map(|b| b.rows).sum();
        let mut out = Matrix::zeros(rows, cols);
        let mut r = 0;
        for b in blocks {
            assert_eq!(b.cols, cols, "vstack requires equal column counts");
            out.set_block(r, 0, b);
            r += b.rows;
        }
        out
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let show_rows = self.rows.min(8);
        for i in 0..show_rows {
            write!(f, "  ")?;
            for j in 0..self.cols.min(8) {
                write!(f, "{:>10.4} ", self.get(i, j))?;
            }
            if self.cols > 8 {
                write!(f, "…")?;
            }
            writeln!(f)?;
        }
        if self.rows > 8 {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_roundtrip() {
        let a = Matrix::from_fn(5, 4, |i, j| (i * 4 + j) as f64);
        let b = a.block(1, 2, 3, 2);
        assert_eq!(b.get(0, 0), a.get(1, 2));
        assert_eq!(b.get(2, 1), a.get(3, 3));
        let mut c = Matrix::zeros(5, 4);
        c.set_block(1, 2, &b);
        assert_eq!(c.get(3, 3), a.get(3, 3));
        assert_eq!(c.get(0, 0), 0.0);
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_fn(3, 5, |i, j| (i as f64) - 2.0 * j as f64);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn symmetrize_and_asymmetry() {
        let mut a = Matrix::from_fn(4, 4, |i, j| (i * 7 + j) as f64);
        assert!(a.asymmetry() > 0.0);
        a.symmetrize();
        assert_eq!(a.asymmetry(), 0.0);
    }

    #[test]
    fn bandwidth_detects_tridiagonal() {
        let a = Matrix::from_fn(6, 6, |i, j| if i.abs_diff(j) <= 1 { 1.0 } else { 0.0 });
        assert_eq!(a.bandwidth(1e-14), 1);
        assert_eq!(Matrix::identity(5).bandwidth(1e-14), 0);
    }

    #[test]
    fn vstack_concatenates() {
        let a = Matrix::from_fn(2, 3, |i, j| (i + j) as f64);
        let b = Matrix::from_fn(1, 3, |_, j| 10.0 + j as f64);
        let s = Matrix::vstack(&[&a, &b]);
        assert_eq!(s.rows(), 3);
        assert_eq!(s.get(2, 1), 11.0);
        assert_eq!(s.get(1, 2), 3.0);
    }

    #[test]
    fn axpy_and_norms() {
        let a = Matrix::from_fn(2, 2, |i, j| (i + j) as f64);
        let mut b = a.clone();
        b.axpy(-1.0, &a);
        assert_eq!(b.norm_fro(), 0.0);
        assert_eq!(a.norm_max(), 2.0);
    }
}
