//! Symmetric tridiagonal eigenvalues via the implicit-shift QL method.
//!
//! This is the final sequential stage of Algorithm IV.3: after the band
//! has been reduced to width `n/p` and gathered on one processor, it is
//! reduced to tridiagonal form (reusing the bulge-chasing kernel with
//! `h = 1`) and its eigenvalues are computed here. The paper cites MRRR
//! for this step; any correct `O(n²)`-ish sequential tridiagonal solver
//! exercises the same code path (DESIGN.md §2), and the independent
//! Sturm-sequence bisection solver in [`crate::sturm`] cross-checks it.

use crate::band::BandedSym;
use crate::bulge;
use crate::tune;

/// Maximum implicit-QL iterations per eigenvalue before the solver
/// reports [`NoConvergence`] (EISPACK used 30; 64 is generous — on
/// finite input the shift strategy converges cubically).
const MAX_QL_ITERS: usize = 64;

/// A tridiagonal eigensolver failed to converge within its iteration
/// budget. On finite input this does not occur (the Wilkinson shift
/// strategy is globally convergent); non-finite input (NaN/∞ reaching
/// the solver) is the practical trigger. Carried through the `try_*`
/// entry points so distributed callers can surface a typed error
/// instead of poisoning the run with a panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NoConvergence {
    /// The solver that gave up (e.g. `"tridiag_eigenvalues"`).
    pub solver: &'static str,
    /// The eigenvalue index being iterated when the budget ran out.
    pub index: usize,
}

impl std::fmt::Display for NoConvergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: QL iteration did not converge within {} iterations (eigenvalue index {})",
            self.solver, MAX_QL_ITERS, self.index
        )
    }
}

impl std::error::Error for NoConvergence {}

/// Eigenvalues of the symmetric tridiagonal matrix with diagonal `d` and
/// sub-diagonal `e` (`e.len() == d.len() − 1`), in ascending order.
///
/// Implicit-shift QL with Wilkinson-style shifts (EISPACK `tql1` shape).
/// Panics on non-convergence; [`try_tridiag_eigenvalues`] reports it as
/// a typed error instead.
pub fn tridiag_eigenvalues(d: &[f64], e: &[f64]) -> Vec<f64> {
    try_tridiag_eigenvalues(d, e).unwrap_or_else(|err| panic!("{err}"))
}

/// [`tridiag_eigenvalues`] with non-convergence reported as
/// [`NoConvergence`] instead of a panic.
pub fn try_tridiag_eigenvalues(d: &[f64], e: &[f64]) -> Result<Vec<f64>, NoConvergence> {
    let n = d.len();
    assert!(n > 0);
    assert_eq!(e.len(), n - 1, "sub-diagonal must have n−1 entries");
    if n == 1 {
        return Ok(vec![d[0]]);
    }
    let mut d = d.to_vec();
    // Working copy of the off-diagonal with a trailing sentinel zero.
    let mut e: Vec<f64> = e.iter().copied().chain(std::iter::once(0.0)).collect();

    for l in 0..n {
        let mut iter = 0;
        loop {
            // Find the first negligible off-diagonal at or after l.
            let mut m = l;
            while m + 1 < n {
                let dd = d[m].abs() + d[m + 1].abs();
                if e[m].abs() <= f64::EPSILON * dd {
                    break;
                }
                m += 1;
            }
            if m == l {
                break;
            }
            iter += 1;
            if iter > MAX_QL_ITERS {
                return Err(NoConvergence { solver: "tridiag_eigenvalues", index: l });
            }

            // Wilkinson shift.
            let mut g = (d[l + 1] - d[l]) / (2.0 * e[l]);
            let mut r = g.hypot(1.0);
            g = d[m] - d[l] + e[l] / (g + if g >= 0.0 { r.abs() } else { -r.abs() });
            let (mut s, mut c, mut p) = (1.0f64, 1.0f64, 0.0f64);

            let mut underflow = false;
            for i in (l..m).rev() {
                let mut f = s * e[i];
                let b = c * e[i];
                r = f.hypot(g);
                e[i + 1] = r;
                if r == 0.0 {
                    // Recover from underflow: skip the transformation.
                    d[i + 1] -= p;
                    e[m] = 0.0;
                    underflow = true;
                    break;
                }
                s = f / r;
                c = g / r;
                g = d[i + 1] - p;
                r = (d[i] - g) * s + 2.0 * c * b;
                p = s * r;
                d[i + 1] = g + p;
                g = c * r - b;
                f = 0.0;
                let _ = f;
            }
            if underflow {
                continue;
            }
            d[l] -= p;
            e[l] = g;
            e[m] = 0.0;
        }
    }
    d.sort_by(|a, b| a.partial_cmp(b).expect("eigenvalues are finite"));
    Ok(d)
}

/// Eigenvalues *and eigenvectors* of the symmetric tridiagonal matrix
/// `(d, e)`: implicit-shift QL with accumulation of the rotations
/// (EISPACK `tql2` shape). Returns `(λ ascending, Z)` with the columns
/// of `Z` the orthonormal eigenvectors (`T·Z = Z·diag(λ)`).
///
/// This powers the eigenvector extension (the paper's §IV.C future
/// work): the band-reduction stages' Householder transforms are
/// back-applied to `Z` to recover the dense matrix's eigenvectors.
/// Panics on non-convergence; [`try_tridiag_eigen`] reports it as a
/// typed error instead.
pub fn tridiag_eigen(d: &[f64], e: &[f64]) -> (Vec<f64>, crate::Matrix) {
    try_tridiag_eigen(d, e).unwrap_or_else(|err| panic!("{err}"))
}

/// [`tridiag_eigen`] with non-convergence reported as [`NoConvergence`]
/// instead of a panic. Also the QL leaf solver of [`crate::dnc`].
pub fn try_tridiag_eigen(d: &[f64], e: &[f64]) -> Result<(Vec<f64>, crate::Matrix), NoConvergence> {
    let n = d.len();
    assert!(n > 0);
    assert_eq!(e.len(), n - 1, "sub-diagonal must have n−1 entries");
    let mut d = d.to_vec();
    let mut e: Vec<f64> = e.iter().copied().chain(std::iter::once(0.0)).collect();
    let mut z = crate::Matrix::identity(n);

    for l in 0..n {
        let mut iter = 0;
        loop {
            let mut m = l;
            while m + 1 < n {
                let dd = d[m].abs() + d[m + 1].abs();
                if e[m].abs() <= f64::EPSILON * dd {
                    break;
                }
                m += 1;
            }
            if m == l {
                break;
            }
            iter += 1;
            if iter > MAX_QL_ITERS {
                return Err(NoConvergence { solver: "tridiag_eigen", index: l });
            }

            let mut g = (d[l + 1] - d[l]) / (2.0 * e[l]);
            let mut r = g.hypot(1.0);
            g = d[m] - d[l] + e[l] / (g + if g >= 0.0 { r.abs() } else { -r.abs() });
            let (mut s, mut c, mut p) = (1.0f64, 1.0f64, 0.0f64);

            let mut underflow = false;
            for i in (l..m).rev() {
                let f = s * e[i];
                let b = c * e[i];
                r = f.hypot(g);
                e[i + 1] = r;
                if r == 0.0 {
                    d[i + 1] -= p;
                    e[m] = 0.0;
                    underflow = true;
                    break;
                }
                s = f / r;
                c = g / r;
                g = d[i + 1] - p;
                r = (d[i] - g) * s + 2.0 * c * b;
                p = s * r;
                d[i + 1] = g + p;
                g = c * r - b;
                // Accumulate the rotation into Z (columns i, i+1).
                for k in 0..n {
                    let zf = z.get(k, i + 1);
                    let zi = z.get(k, i);
                    z.set(k, i + 1, s * zi + c * zf);
                    z.set(k, i, c * zi - s * zf);
                }
            }
            if underflow {
                continue;
            }
            d[l] -= p;
            e[l] = g;
            e[m] = 0.0;
        }
    }

    // Sort eigenpairs ascending (selection sort, swapping columns).
    for i in 0..n {
        let mut k = i;
        for j in i + 1..n {
            if d[j] < d[k] {
                k = j;
            }
        }
        if k != i {
            d.swap(i, k);
            for r in 0..n {
                let tmp = z.get(r, i);
                z.set(r, i, z.get(r, k));
                z.set(r, k, tmp);
            }
        }
    }
    Ok((d, z))
}

/// Eigenvalues of a symmetric banded matrix, computed sequentially.
/// Panicking wrapper around [`try_banded_eigenvalues`].
pub fn banded_eigenvalues(b: &BandedSym) -> Vec<f64> {
    try_banded_eigenvalues(b).unwrap_or_else(|err| panic!("{err}"))
}

/// Eigenvalues of a symmetric banded matrix, computed sequentially:
/// bulge-chase the band down to tridiagonal and run a tridiagonal
/// eigensolver, with non-convergence reported as [`NoConvergence`].
///
/// The schedule is governed by [`crate::tune`]. With divide-and-conquer
/// enabled (the default), bandwidth-halving sweeps (fat rank-`b/2`
/// block reflectors — matrix–matrix rates) run while the band is above
/// [`tune::halve_floor`], the remaining reduction runs as one fused
/// rank-1 sweep ([`bulge::sweep_to_tridiagonal`]), and the tridiagonal
/// spectrum comes from [`crate::dnc`]. With `CA_DNC=0` the legacy
/// schedule is preserved exactly: halve to bandwidth 8, generic `h = 1`
/// chase, implicit-QL finale.
pub fn try_banded_eigenvalues(b: &BandedSym) -> Result<Vec<f64>, NoConvergence> {
    let n = b.n();
    if n == 1 {
        return Ok(vec![b.get(0, 0)]);
    }
    let bw = b.bandwidth().max(b.measured_bandwidth(0.0));
    if bw <= 1 {
        let (d, e) = b.tridiagonal();
        return if tune::dnc_enabled() && d.len() > tune::dnc_leaf() {
            crate::dnc::dnc_eigenvalues(&d, &e)
        } else {
            try_tridiag_eigenvalues(&d, &e)
        };
    }
    // Re-house with enough fill capacity, then reduce to tridiagonal in
    // bandwidth-halving sweeps while the band is fat: each halving's
    // chases apply rank-⌈b/2⌉ block reflectors (fat GEMMs) instead of
    // the rank-1 updates a direct b → 1 sweep degenerates to — the
    // difference between matrix–matrix and matrix–vector flop rates.
    // Below the crossover the chase count (∼n²/b² per halving) and its
    // per-window overhead dominate the shrinking flop payload, so the
    // tail runs as one direct sweep to bandwidth 1. The initial
    // capacity 2·bw covers every later halving's 2·b′ fill as well.
    let cap = (2 * bw).min(n - 1);
    let mut work = BandedSym::zeros(n, bw, cap);
    for j in 0..n {
        for i in j..n.min(j + bw + 1) {
            work.set(i, j, b.get(i, j));
        }
    }
    if tune::dnc_enabled() {
        let floor = tune::halve_floor();
        while work.bandwidth() > floor {
            bulge::reduce_band(&mut work, 2);
        }
        if work.bandwidth() > 1 {
            bulge::sweep_to_tridiagonal(&mut work);
        }
        let (d, e) = work.tridiagonal();
        if d.len() > tune::dnc_leaf() {
            crate::dnc::dnc_eigenvalues(&d, &e)
        } else {
            try_tridiag_eigenvalues(&d, &e)
        }
    } else {
        const HALVE_FLOOR: usize = 8;
        while work.bandwidth() > HALVE_FLOOR {
            bulge::reduce_band(&mut work, 2);
        }
        if work.bandwidth() > 1 {
            bulge::reduce_band_to(&mut work, 1);
        }
        let (d, e) = work.tridiagonal();
        try_tridiag_eigenvalues(&d, &e)
    }
}

/// Compare two ascending spectra; returns the largest absolute
/// difference.
pub fn spectrum_distance(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .fold(0.0f64, |worst, (x, y)| worst.max((x - y).abs()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;
    use crate::matrix::Matrix;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn two_by_two_analytic() {
        // [[a, b], [b, c]] has eigenvalues (a+c)/2 ± √(((a−c)/2)² + b²).
        let (a, b, c) = (2.0, 1.5, -1.0);
        let mid = (a + c) / 2.0;
        let rad = (((a - c) / 2.0f64).powi(2) + b * b).sqrt();
        let ev = tridiag_eigenvalues(&[a, c], &[b]);
        assert!((ev[0] - (mid - rad)).abs() < 1e-12);
        assert!((ev[1] - (mid + rad)).abs() < 1e-12);
    }

    #[test]
    fn laplacian_1d_analytic_spectrum() {
        // Tridiagonal (−1, 2, −1) of order n has eigenvalues
        // 2 − 2cos(kπ/(n+1)).
        let n = 21;
        let d = vec![2.0; n];
        let e = vec![-1.0; n - 1];
        let ev = tridiag_eigenvalues(&d, &e);
        for (idx, lam) in ev.iter().enumerate() {
            let k = (idx + 1) as f64;
            let want = 2.0 - 2.0 * (k * std::f64::consts::PI / (n as f64 + 1.0)).cos();
            assert!((lam - want).abs() < 1e-10, "λ_{idx} = {lam}, want {want}");
        }
    }

    #[test]
    fn diagonal_matrix_returns_sorted_diagonal() {
        let d = vec![3.0, -1.0, 2.0, 0.5];
        let e = vec![0.0; 3];
        let ev = tridiag_eigenvalues(&d, &e);
        assert_eq!(ev, vec![-1.0, 0.5, 2.0, 3.0]);
    }

    #[test]
    fn single_element() {
        assert_eq!(tridiag_eigenvalues(&[42.0], &[]), vec![42.0]);
    }

    #[test]
    fn trace_and_square_sum_preserved() {
        let mut rng = StdRng::seed_from_u64(50);
        let a = gen::random_banded(&mut rng, 40, 1);
        let b = BandedSym::from_dense(&a, 1, 1);
        let (d, e) = b.tridiagonal();
        let ev = tridiag_eigenvalues(&d, &e);
        let tr: f64 = d.iter().sum();
        let ev_sum: f64 = ev.iter().sum();
        assert!((tr - ev_sum).abs() < 1e-10);
        let fro2: f64 = a.norm_fro().powi(2);
        let ev_sq: f64 = ev.iter().map(|l| l * l).sum();
        assert!((fro2 - ev_sq).abs() < 1e-8);
    }

    #[test]
    fn banded_solver_recovers_prescribed_spectrum_via_dense_reduction() {
        // Build a banded matrix, compute its spectrum two ways:
        // banded_eigenvalues vs QL on an independently generated dense
        // reduction path (moments already tested in bulge.rs).
        let mut rng = StdRng::seed_from_u64(51);
        let dense = gen::random_banded(&mut rng, 24, 5);
        let b = BandedSym::from_dense(&dense, 5, 10);
        let ev = banded_eigenvalues(&b);
        // Independent check: Sturm bisection (crate::sturm) on the
        // tridiagonalized matrix would be circular here; instead verify
        // the moment identities which pin the spectrum's first moments.
        let tr: f64 = (0..24).map(|i| dense.get(i, i)).sum();
        assert!((ev.iter().sum::<f64>() - tr).abs() < 1e-9);
        let fro2 = dense.norm_fro().powi(2);
        assert!((ev.iter().map(|l| l * l).sum::<f64>() - fro2).abs() < 1e-8);
        // And sortedness.
        for w in ev.windows(2) {
            assert!(w[0] <= w[1]);
        }
    }

    #[test]
    fn banded_solver_matches_spectrum_of_similarity_construction() {
        // A = Q D Qᵀ restricted to be banded is not possible in general,
        // so instead: take a tridiagonal with known eigenvalues
        // (1D Laplacian), embed it as a BandedSym with larger capacity,
        // and check the banded path reproduces the analytic spectrum.
        let n = 16;
        let lap = gen::laplacian_2d(n, 1);
        let b = BandedSym::from_dense(&lap, 1, 4);
        let ev = banded_eigenvalues(&b);
        for (idx, lam) in ev.iter().enumerate() {
            let k = (idx + 1) as f64;
            let want = 4.0 - 2.0 * (k * std::f64::consts::PI / (n as f64 + 1.0)).cos();
            assert!((lam - want).abs() < 1e-9);
        }
    }

    #[test]
    fn clustered_eigenvalues_converge() {
        // Nearly-degenerate spectrum stresses the QL shift strategy.
        let n = 30;
        let d: Vec<f64> = (0..n).map(|i| 1.0 + 1e-10 * i as f64).collect();
        let e = vec![1e-12; n - 1];
        let ev = tridiag_eigenvalues(&d, &e);
        assert_eq!(ev.len(), n);
        for lam in &ev {
            assert!((lam - 1.0).abs() < 1e-8);
        }
    }

    #[test]
    fn spectrum_distance_works() {
        assert_eq!(spectrum_distance(&[1.0, 2.0], &[1.0, 2.5]), 0.5);
    }

    #[test]
    fn non_finite_input_yields_typed_error() {
        // NaN never satisfies the deflation test, so the QL loop runs
        // out of budget — the typed error, not a panic or a NaN result.
        let d = vec![1.0, f64::NAN, 2.0, 0.5];
        let e = vec![0.3, 0.2, 0.1];
        let err = try_tridiag_eigenvalues(&d, &e).unwrap_err();
        assert_eq!(err.solver, "tridiag_eigenvalues");
        assert!(err.to_string().contains("did not converge"));
        let err = try_tridiag_eigen(&d, &e).unwrap_err();
        assert_eq!(err.solver, "tridiag_eigen");
    }

    #[test]
    fn banded_engines_agree_on_spectrum() {
        // Same matrix through the legacy (halve-to-8 + QL) and tuned
        // (fused sweep + D&C) schedules.
        let mut rng = StdRng::seed_from_u64(54);
        let dense = gen::random_banded(&mut rng, 60, 7);
        let b = BandedSym::from_dense(&dense, 7, 14);
        let was = crate::tune::dnc_enabled();
        crate::tune::set_dnc_enabled(true);
        let tuned = banded_eigenvalues(&b);
        crate::tune::set_dnc_enabled(false);
        let legacy = banded_eigenvalues(&b);
        crate::tune::set_dnc_enabled(was);
        let dist = spectrum_distance(&tuned, &legacy);
        assert!(dist < 1e-9 * dense.norm_fro().max(1.0), "engines differ by {dist}");
    }

    fn check_tridiag_eigen(d: &[f64], e: &[f64], tol: f64) {
        use crate::gemm::{matmul, Trans};
        let n = d.len();
        let (lam, z) = tridiag_eigen(d, e);
        // Matches the eigenvalue-only path.
        let lam_only = tridiag_eigenvalues(d, e);
        assert!(spectrum_distance(&lam, &lam_only) < tol);
        // Z orthonormal.
        let ztz = matmul(&z, Trans::T, &z, Trans::N);
        assert!(ztz.max_diff(&Matrix::identity(n)) < tol, "ZᵀZ ≠ I");
        // T·Z = Z·Λ.
        let mut t = Matrix::zeros(n, n);
        for i in 0..n {
            t.set(i, i, d[i]);
            if i + 1 < n {
                t.set(i, i + 1, e[i]);
                t.set(i + 1, i, e[i]);
            }
        }
        let tz = matmul(&t, Trans::N, &z, Trans::N);
        let mut zl = z.clone();
        for i in 0..n {
            for j in 0..n {
                zl.set(i, j, z.get(i, j) * lam[j]);
            }
        }
        assert!(tz.max_diff(&zl) < tol * (1.0 + t.norm_max()), "T·Z ≠ Z·Λ");
    }

    #[test]
    fn eigenvectors_of_laplacian() {
        let n = 15;
        check_tridiag_eigen(&vec![2.0; n], &vec![-1.0; n - 1], 1e-10);
    }

    #[test]
    fn eigenvectors_of_random_tridiagonals() {
        let mut rng = StdRng::seed_from_u64(53);
        use rand::Rng;
        for trial in 0..4 {
            let n = 6 + 5 * trial;
            let d: Vec<f64> = (0..n).map(|_| rng.gen_range(-2.0..2.0)).collect();
            let e: Vec<f64> = (0..n - 1).map(|_| rng.gen_range(-1.0..1.0)).collect();
            check_tridiag_eigen(&d, &e, 1e-9);
        }
    }

    #[test]
    fn eigenvectors_of_diagonal_are_permutation() {
        let (lam, z) = tridiag_eigen(&[3.0, 1.0, 2.0], &[0.0, 0.0]);
        assert_eq!(lam, vec![1.0, 2.0, 3.0]);
        // Column j of Z is the standard basis vector of the source index.
        assert_eq!(z.get(1, 0), 1.0);
        assert_eq!(z.get(2, 1), 1.0);
        assert_eq!(z.get(0, 2), 1.0);
    }

    #[test]
    fn wilkinson_matrix_regression() {
        // W21+ Wilkinson matrix: d = |i − 10|, e = 1. Its two largest
        // eigenvalues are famously close; reference value from the
        // literature: λ_max ≈ 10.746194182903393.
        let n = 21;
        let d: Vec<f64> = (0..n).map(|i| (i as f64 - 10.0).abs()).collect();
        let e = vec![1.0; n - 1];
        let ev = tridiag_eigenvalues(&d, &e);
        assert!((ev[n - 1] - 10.746194182903393).abs() < 1e-9);
        assert!((ev[n - 1] - ev[n - 2]) < 1e-5); // near-degenerate pair
    }

    #[test]
    fn matrix_free_cross_check_against_characteristic_poly_roots() {
        // 3×3 tridiagonal with known characteristic polynomial roots.
        let ev = tridiag_eigenvalues(&[0.0, 0.0, 0.0], &[1.0, 1.0]);
        let s2 = 2.0f64.sqrt();
        assert!((ev[0] + s2).abs() < 1e-12);
        assert!(ev[1].abs() < 1e-12);
        assert!((ev[2] - s2).abs() < 1e-12);
    }

    #[test]
    fn dense_bandwidth_one_agrees_with_banded_path() {
        let mut rng = StdRng::seed_from_u64(52);
        let a = gen::random_banded(&mut rng, 18, 3);
        let b3 = BandedSym::from_dense(&a, 3, 6);
        let ev_banded = banded_eigenvalues(&b3);
        // Reduce with two halvings instead (3 → 1 via k=3 happens inside);
        // use a second, independent path: dense window moments.
        let tr: f64 = (0..18).map(|i| a.get(i, i)).sum();
        assert!((ev_banded.iter().sum::<f64>() - tr).abs() < 1e-9);
        let _ = Matrix::identity(1);
    }
}
