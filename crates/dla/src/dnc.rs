//! Cuppen-style divide-and-conquer symmetric tridiagonal eigensolver.
//!
//! The final sequential stage of Algorithm IV.3 hands one processor a
//! tridiagonal matrix. The implicit-QL solver in [`crate::tridiag`]
//! processes it with `O(n²)` dependent scalar rotations — correct, but
//! the one kernel in the pipeline that can never reach matrix–matrix
//! flop rates. This module implements the standard production answer
//! (LAPACK `dstedc` / ELPA lineage): tear the matrix in half with a
//! rank-one update, solve the halves independently (in parallel — the
//! subproblems share nothing), and stitch the spectra back together
//! through the **secular equation**, expressing the eigenvector merge
//! as a dense GEMM so the dominant cost runs at blocked-kernel rates.
//!
//! Pipeline per merge, following Gu & Eisenstat's stable formulation:
//!
//! 1. **Tear**: `T = diag(T₁ − ρ·e_k e_kᵀ, T₂ − ρ·e₁e₁ᵀ) + ρ·v vᵀ` with
//!    `ρ = |β|` (β the cut off-diagonal) and `v = (e_k; sign(β)·e₁)`,
//!    so the rank-one weight is always non-negative.
//! 2. **Deflation** (`dlaed2` shape): with `z` normalised and
//!    `ρ ← ρ‖z‖²`, any `ρ|z_i| ≤ 8ε·max(max|d|, ρ)` deflates outright
//!    (its eigenpair passes through); close pole pairs are rotated so
//!    one of the pair deflates, the Givens rotation applied to the
//!    carried eigenvector columns. Clustered spectra collapse to a few
//!    secular roots — deflation is the algorithm's fast path, tested by
//!    the heavy-deflation generators in [`crate::gen`].
//! 3. **Secular roots**: for each undeflated interval
//!    `(d_j, d_{j+1})`, solve `1 + ρΣᵢ z_i²/(d_i − λ) = 0` with Li's
//!    "middle way" rational iteration (the `dlaed4` scheme): split the
//!    sum at the interval, model each side with a single pole matching
//!    value *and* derivative, and take the root of the resulting
//!    two-pole surrogate — quadratically convergent even when
//!    neighbouring poles crowd the interval. The origin is shifted to
//!    the nearer pole so `μ` carries full relative accuracy, and a
//!    maintained sign bracket with bisection fallback makes
//!    convergence unconditional.
//! 4. **Gu/Eisenstat ẑ**: recompute `ẑᵢ² = Πⱼ(λⱼ−dᵢ)/Πⱼ≠ᵢ(dⱼ−dᵢ)` from
//!    the computed roots, which restores numerical orthogonality of the
//!    secular eigenvectors without extended precision.
//! 5. **GEMM merge**: the undeflated eigenvectors of the merged system
//!    are `Q·Û` — one dense `n × m × m` product through the blocked
//!    [`crate::gemm`] kernels; deflated columns pass through untouched.
//!
//! **Determinism**: subproblems are independent, every merge is a
//! deterministic function of its inputs, and secular roots are solved
//! independently per interval, so the parallel (rayon) and
//! `CA_SERIAL=1` serial orders produce **bit-identical** results; the
//! env hatch only pins the execution order for the serial CI lane.
//!
//! The eigenvalue-only variant ([`dnc_eigenvalues`]) carries just the
//! first and last rows of each subproblem's eigenvector matrix — all a
//! parent merge ever reads — turning the `O(n³)` vector algebra into
//! `O(n²)` while following the identical deflation/secular path.

use crate::gemm::{matmul, Trans};
use crate::matrix::Matrix;
use crate::tridiag::{try_tridiag_eigen, NoConvergence};
use crate::tune;
use rayon::prelude::*;

// Secular-equation work counters (live only when `CA_TRACE ≥ 1`).
static SECULAR_ROOTS: ca_obs::Counter = ca_obs::Counter::new("dnc.secular_roots");
static SECULAR_ITERS: ca_obs::Counter = ca_obs::Counter::new("dnc.secular_iters");

const EPS: f64 = f64::EPSILON;
/// Secular systems at least this large solve their roots over rayon
/// workers (same threshold flavour as `sturm::PAR_EIGS`).
const PAR_ROOTS: usize = 64;

/// Eigenvalues and orthonormal eigenvectors of the symmetric
/// tridiagonal matrix `(d, e)` by divide-and-conquer: returns
/// `(λ ascending, Z)` with `T·Z = Z·diag(λ)`, like
/// [`crate::tridiag::tridiag_eigen`]. Subproblems of size
/// ≤ [`tune::dnc_leaf`] fall back to the QL solver, whose convergence
/// failure (never observed on finite input) is the only error path.
pub fn dnc_eigen(d: &[f64], e: &[f64]) -> Result<(Vec<f64>, Matrix), NoConvergence> {
    check_shape(d, e);
    solve_full(d, e, tune::dnc_leaf().max(2))
}

/// Eigenvalues only, in ascending order. Same recursion and merge
/// arithmetic as [`dnc_eigen`] but carrying a `2 × n` row pair (first
/// and last eigenvector rows) instead of the full `Z`.
pub fn dnc_eigenvalues(d: &[f64], e: &[f64]) -> Result<Vec<f64>, NoConvergence> {
    check_shape(d, e);
    let (lam, _) = solve_rows(d, e, tune::dnc_leaf().max(2))?;
    Ok(lam)
}

fn check_shape(d: &[f64], e: &[f64]) {
    assert!(!d.is_empty());
    assert_eq!(e.len(), d.len() - 1, "sub-diagonal must have n−1 entries");
}

/// Run the two halves of a split, in parallel unless `CA_SERIAL=1`.
fn run_pair<RA: Send, RB: Send>(
    a: impl FnOnce() -> RA + Send,
    b: impl FnOnce() -> RB + Send,
) -> (RA, RB) {
    if tune::serial() {
        (a(), b())
    } else {
        rayon::join(a, b)
    }
}

fn solve_full(d: &[f64], e: &[f64], leaf: usize) -> Result<(Vec<f64>, Matrix), NoConvergence> {
    let n = d.len();
    if n <= leaf {
        return try_tridiag_eigen(d, e);
    }
    let k = n / 2;
    let (d1, d2, rho, s) = tear(d, e, k);
    let (left, right) = run_pair(
        || solve_full(&d1, &e[..k - 1], leaf),
        || solve_full(&d2, &e[k..], leaf),
    );
    let (lam1, q1) = left?;
    let (lam2, q2) = right?;

    let (dm, z) = merge_inputs(&lam1, &lam2, q1.row(k - 1), q2.row(0), s);
    let plan = merge_plan(&dm, &z, rho);

    // Carrier: block-diagonal pre-merge eigenvector basis.
    let mut c = Matrix::zeros(n, n);
    c.set_block(0, 0, &q1);
    c.set_block(k, k, &q2);
    Ok(apply_merge(&plan, c))
}

/// Row-pair recursion: returns `(λ, R)` with `R` `2 × n`, row 0 the
/// first and row 1 the last row of the (never materialised) `Z`.
fn solve_rows(d: &[f64], e: &[f64], leaf: usize) -> Result<(Vec<f64>, Matrix), NoConvergence> {
    let n = d.len();
    if n <= leaf {
        let (lam, z) = try_tridiag_eigen(d, e)?;
        let mut r = Matrix::zeros(2, n);
        r.row_mut(0).copy_from_slice(z.row(0));
        r.row_mut(1).copy_from_slice(z.row(n - 1));
        return Ok((lam, r));
    }
    let k = n / 2;
    let (d1, d2, rho, s) = tear(d, e, k);
    let (left, right) = run_pair(
        || solve_rows(&d1, &e[..k - 1], leaf),
        || solve_rows(&d2, &e[k..], leaf),
    );
    let (lam1, r1) = left?;
    let (lam2, r2) = right?;

    let (dm, z) = merge_inputs(&lam1, &lam2, r1.row(1), r2.row(0), s);
    let plan = merge_plan(&dm, &z, rho);

    // Carrier: first row of the left block, last row of the right.
    let mut c = Matrix::zeros(2, n);
    c.row_mut(0)[..k].copy_from_slice(r1.row(0));
    c.row_mut(1)[k..].copy_from_slice(r2.row(1));
    Ok(apply_merge(&plan, c))
}

/// Split `(d, e)` at `k`: returns the two corrected diagonals, the
/// rank-one weight `ρ = |e[k−1]| ≥ 0` and the sign `s` multiplying the
/// right half of the tear vector.
fn tear(d: &[f64], e: &[f64], k: usize) -> (Vec<f64>, Vec<f64>, f64, f64) {
    let beta = e[k - 1];
    let rho = beta.abs();
    let s = if beta >= 0.0 { 1.0 } else { -1.0 };
    let mut d1 = d[..k].to_vec();
    let mut d2 = d[k..].to_vec();
    d1[k - 1] -= rho;
    d2[0] -= rho;
    (d1, d2, rho, s)
}

/// Concatenate the halves' spectra and build the tear vector
/// `z = (last row of Q₁, s·first row of Q₂)`.
fn merge_inputs(
    lam1: &[f64],
    lam2: &[f64],
    q1_last: &[f64],
    q2_first: &[f64],
    s: f64,
) -> (Vec<f64>, Vec<f64>) {
    let mut dm = Vec::with_capacity(lam1.len() + lam2.len());
    dm.extend_from_slice(lam1);
    dm.extend_from_slice(lam2);
    let mut z = Vec::with_capacity(dm.len());
    z.extend_from_slice(q1_last);
    z.extend(q2_first.iter().map(|v| s * v));
    (dm, z)
}

/// Where an output column of a merge comes from.
enum ColSrc {
    /// Column `j` of the secular eigenvector set `Q·Û`.
    Secular(usize),
    /// The (rotation-updated) pre-merge column with this index.
    Deflated(usize),
}

/// Everything a merge decides *before* touching the carried
/// eigenvector columns. Computing the plan first keeps the column
/// algebra identical between the full-`Z` and row-pair drivers.
struct MergePlan {
    /// Merged eigenvalues, ascending.
    lam: Vec<f64>,
    /// Provenance of each output column, parallel to `lam`.
    src: Vec<ColSrc>,
    /// Deflating Givens rotations `(col_i, col_j, c, s)`, applied in
    /// order to the carrier: `qᵢ ← c·qᵢ − s·qⱼ`, `qⱼ ← s·qᵢ + c·qⱼ`.
    rots: Vec<(usize, usize, f64, f64)>,
    /// Pre-merge column index of each undeflated (kept) slot.
    kept_cols: Vec<usize>,
    /// `m × m` secular eigenvector coefficients: column `j` holds the
    /// normalised `ûᵢ = ẑᵢ/(dᵢ − λⱼ)` over the kept slots.
    ucoef: Matrix,
}

/// Deflation scan + secular solve for the merged system
/// `diag(d) + ρ·z zᵀ` (`ρ ≥ 0`).
fn merge_plan(d: &[f64], z: &[f64], rho: f64) -> MergePlan {
    let n = d.len();
    // Sort slots by pole value; stable index tie-break keeps the plan
    // (and with it the whole solve) deterministic under exact ties.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| d[a].total_cmp(&d[b]).then(a.cmp(&b)));
    let mut ds: Vec<f64> = order.iter().map(|&i| d[i]).collect();
    let mut zs: Vec<f64> = order.iter().map(|&i| z[i]).collect();

    // Normalise z and fold its norm into ρ: D + ρzzᵀ = D + ρ‖z‖²·ẑẑᵀ.
    let znorm2: f64 = zs.iter().map(|v| v * v).sum();
    let rho_eff = rho * znorm2;
    if znorm2 > 0.0 {
        let inv = 1.0 / znorm2.sqrt();
        for v in &mut zs {
            *v *= inv;
        }
    }
    let dmax = ds.iter().fold(0.0f64, |m, v| m.max(v.abs()));
    let tol = 8.0 * EPS * dmax.max(rho_eff);

    // Deflation scan over the sorted slots (dlaed2 shape): tiny z
    // components deflate outright; a kept pole too close to the next
    // kept candidate is rotated away and deflates with its updated d.
    let mut rots = Vec::new();
    let mut kept: Vec<usize> = Vec::new();
    let mut defl: Vec<usize> = Vec::new();
    for t in 0..n {
        if rho_eff * zs[t].abs() <= tol {
            defl.push(t);
            continue;
        }
        if let Some(&prev) = kept.last() {
            let (zi, zj) = (zs[prev], zs[t]);
            let tau = zi.hypot(zj);
            let (c, s) = (zj / tau, zi / tau);
            // Off-diagonal the rotation would leave behind.
            if (c * s * (ds[prev] - ds[t])).abs() <= tol {
                rots.push((order[prev], order[t], c, s));
                let (di, dj) = (ds[prev], ds[t]);
                ds[prev] = c * c * di + s * s * dj;
                ds[t] = s * s * di + c * c * dj;
                zs[prev] = 0.0;
                zs[t] = tau;
                kept.pop();
                defl.push(prev);
            }
        }
        kept.push(t);
    }

    let m = kept.len();
    let dk: Vec<f64> = kept.iter().map(|&t| ds[t]).collect();
    let zk: Vec<f64> = kept.iter().map(|&t| zs[t]).collect();
    let (roots, ucoef) = if m > 0 {
        secular_system(&dk, &zk, rho_eff)
    } else {
        (Vec::new(), Matrix::zeros(0, 0))
    };

    // Interleave secular roots and deflated poles into ascending order;
    // total_cmp + provenance tie-break keeps the order deterministic.
    let mut items: Vec<(f64, ColSrc)> = defl
        .iter()
        .map(|&t| (ds[t], ColSrc::Deflated(order[t])))
        .collect();
    items.extend(
        roots
            .iter()
            .enumerate()
            .map(|(j, r)| (dk[r.origin] + r.mu, ColSrc::Secular(j))),
    );
    items.sort_by(|a, b| {
        a.0.total_cmp(&b.0).then_with(|| src_key(&a.1).cmp(&src_key(&b.1)))
    });
    let (lam, src): (Vec<f64>, Vec<ColSrc>) = items.into_iter().unzip();

    MergePlan {
        lam,
        src,
        rots,
        kept_cols: kept.iter().map(|&t| order[t]).collect(),
        ucoef,
    }
}

fn src_key(s: &ColSrc) -> (u8, usize) {
    match s {
        ColSrc::Secular(j) => (0, *j),
        ColSrc::Deflated(c) => (1, *c),
    }
}

/// One secular root `λ = dk[origin] + μ`, origin the nearer pole.
struct Root {
    origin: usize,
    mu: f64,
}

/// Solve all `m` secular roots and build the `m × m` eigenvector
/// coefficient matrix via the Gu/Eisenstat ẑ recomputation.
fn secular_system(dk: &[f64], zk: &[f64], rho: f64) -> (Vec<Root>, Matrix) {
    let m = dk.len();
    let roots: Vec<Root> = if m >= PAR_ROOTS && !tune::serial() {
        (0..m)
            .into_par_iter()
            .map(|j| secular_root(dk, zk, rho, j))
            .collect()
    } else {
        (0..m).map(|j| secular_root(dk, zk, rho, j)).collect()
    };

    // Gu/Eisenstat: ẑᵢ² = Πⱼ(λⱼ − dᵢ) / Πⱼ≠ᵢ(dⱼ − dᵢ), every difference
    // λⱼ − dᵢ formed as (d[origin] − dᵢ) + μ to keep full relative
    // accuracy near the poles. Interlacing makes every ratio positive;
    // the sign is inherited from the computed z.
    let mut zhat = vec![0.0f64; m];
    for i in 0..m {
        let mut prod = 1.0f64;
        for (j, r) in roots.iter().enumerate() {
            let num = (dk[r.origin] - dk[i]) + r.mu;
            if j == i {
                prod *= num;
            } else {
                prod *= num / (dk[j] - dk[i]);
            }
        }
        zhat[i] = prod.abs().sqrt().copysign(zk[i]);
    }

    // Column j of Û: ûᵢ = ẑᵢ / (dᵢ − λⱼ), normalised. A denominator of
    // exactly zero means λⱼ sits on the pole: the eigenvector is eᵢ.
    let mut ucoef = Matrix::zeros(m, m);
    let mut col = vec![0.0f64; m];
    for (j, r) in roots.iter().enumerate() {
        let mut on_pole = None;
        let mut nrm2 = 0.0f64;
        for i in 0..m {
            let den = (dk[i] - dk[r.origin]) - r.mu;
            if den == 0.0 {
                on_pole = Some(i);
                break;
            }
            col[i] = zhat[i] / den;
            nrm2 += col[i] * col[i];
        }
        match on_pole {
            Some(i) => ucoef.set(i, j, 1.0),
            None => {
                let inv = 1.0 / nrm2.sqrt();
                for i in 0..m {
                    ucoef.set(i, j, col[i] * inv);
                }
            }
        }
    }
    (roots, ucoef)
}

/// One evaluation of the shifted secular function, split at pole index
/// `split` into the left sum `ψ(μ) = Σ_{i<split} ρzᵢ²/(δᵢ−μ)` and right
/// sum `φ(μ) = Σ_{i≥split} ρzᵢ²/(δᵢ−μ)`, together with their
/// derivatives and the absolute-term scale. `g = 1 + ψ + φ`; the
/// derivatives feed Li's "middle way" rational interpolation.
struct SecularEval {
    g: f64,
    psi: f64,
    dpsi: f64,
    phi: f64,
    dphi: f64,
    scale: f64,
}

fn eval_g(delta: &[f64], zk: &[f64], rho: f64, mu: f64, split: usize) -> SecularEval {
    let (mut psi, mut dpsi) = (0.0f64, 0.0f64);
    let (mut phi, mut dphi) = (0.0f64, 0.0f64);
    let mut scale = 1.0f64;
    for i in 0..split {
        let inv = 1.0 / (delta[i] - mu);
        let t = rho * zk[i] * zk[i] * inv;
        psi += t;
        dpsi += t * inv;
        scale += t.abs();
    }
    for i in split..delta.len() {
        let inv = 1.0 / (delta[i] - mu);
        let t = rho * zk[i] * zk[i] * inv;
        phi += t;
        dphi += t * inv;
        scale += t.abs();
    }
    SecularEval { g: 1.0 + psi + phi, psi, dpsi, phi, dphi, scale }
}

/// Root `j` of the secular equation: guarded two-pole rational
/// iteration (dlaed4's "middle way" shape) on a maintained sign
/// bracket, with bisection whenever the rational candidate leaves the
/// bracket — convergence is unconditional.
fn secular_root(dk: &[f64], zk: &[f64], rho: f64, j: usize) -> Root {
    SECULAR_ROOTS.add(1);
    let m = dk.len();
    if m == 1 {
        // 1 + ρz²/(d − λ) = 0 ⇒ λ = d + ρz² (z is unit so z² = 1, but
        // keep the computed value).
        return Root { origin: 0, mu: rho * zk[0] * zk[0] };
    }
    let last = j == m - 1;
    // Right end of the root's interval; for the last root the bound
    // λ ≤ d_max + ρ‖ẑ‖² = d_max + ρ.
    let width = if last { rho } else { dk[j + 1] - dk[j] };

    // Choose the origin pole by the secular sign at the midpoint,
    // evaluated in coordinates relative to dk[j] for accuracy.
    let (origin, mut lo, mut hi);
    if last {
        origin = j;
        lo = 0.0;
        hi = width;
    } else {
        let half = 0.5 * width;
        let mut gmid = 1.0f64;
        for i in 0..m {
            gmid += rho * zk[i] * zk[i] / ((dk[i] - dk[j]) - half);
        }
        if gmid >= 0.0 {
            // Root in the left half: origin at the left pole.
            origin = j;
            lo = 0.0;
            hi = half;
        } else {
            origin = j + 1;
            lo = -half;
            hi = 0.0;
        }
    }
    let delta: Vec<f64> = dk.iter().map(|v| v - dk[origin]).collect();
    // Two nearest poles bracketing the root (in delta coordinates).
    let (p1, p2) = if last { (m - 2, m - 1) } else { (j, j + 1) };

    let mut mu = 0.5 * (lo + hi);
    let (e1, e2) = (delta[p1], delta[p2]);
    for _iter in 0..80 {
        SECULAR_ITERS.add(1);
        let ev = eval_g(&delta, zk, rho, mu, p2);
        if !ev.g.is_finite() {
            // Landed exactly on a pole: retreat to the bracket midpoint
            // (differs from mu because the bracket has since shrunk).
            mu = 0.5 * (lo + hi);
            if mu == lo || mu == hi {
                break;
            }
            continue;
        }
        if ev.g.abs() <= 8.0 * EPS * ev.scale {
            break;
        }
        if ev.g > 0.0 {
            hi = mu;
        } else {
            lo = mu;
        }
        if (hi - lo).abs() <= 2.0 * EPS * lo.abs().max(hi.abs()) {
            mu = 0.5 * (lo + hi);
            break;
        }
        // Li's "middle way" rational interpolant (the dlaed4 scheme):
        // replace each side-sum by a single pole at the bracketing
        // eigenvalue, matching BOTH value and slope at the iterate —
        //   ψ(x) ≈ S + s/(δ₁−x),  s = ψ'(δ₁−μ)², S = ψ − ψ'(δ₁−μ)
        //   φ(x) ≈ R + r/(δ₂−x),  r = φ'(δ₂−μ)², R = φ − φ'(δ₂−μ)
        // so the model agrees with g to second order and the update is
        // quadratically convergent; the fixed-weight variant (freeze
        // a₁ = ρz₁²) is only linear when neighbouring poles crowd in.
        let (w1, w2) = (e1 - mu, e2 - mu);
        let s = ev.dpsi * w1 * w1;
        let r = ev.dphi * w2 * w2;
        let c = 1.0 + (ev.psi - ev.dpsi * w1) + (ev.phi - ev.dphi * w2);
        // Solve c + s/(e1−x) + r/(e2−x) = 0:
        let qa = c;
        let qb = -(c * (e1 + e2) + s + r);
        let qc = c * e1 * e2 + s * e2 + r * e1;
        let mut cand = f64::NAN;
        if qa == 0.0 {
            if qb != 0.0 {
                cand = -qc / qb;
            }
        } else {
            let disc = qb * qb - 4.0 * qa * qc;
            if disc >= 0.0 {
                let q = -0.5 * (qb + disc.sqrt().copysign(qb));
                let (x1, x2) = (q / qa, if q != 0.0 { qc / q } else { f64::NAN });
                cand = if x1 > lo && x1 < hi {
                    x1
                } else if x2 > lo && x2 < hi {
                    x2
                } else {
                    f64::NAN
                };
            }
        }
        let next = if cand.is_finite() && cand > lo && cand < hi {
            cand
        } else {
            0.5 * (lo + hi)
        };
        // A step below one ulp of μ means the iterate is as close to
        // the root as the arithmetic can express: μ is done even if the
        // cancellation-limited residual sits above the g-tolerance.
        if (next - mu).abs() <= EPS * mu.abs() {
            mu = next;
            break;
        }
        mu = next;
    }
    Root { origin, mu }
}

/// Apply a merge plan to the carried eigenvector columns (`cmat` is
/// `n × n` for the full driver, `2 × n` for the row-pair driver):
/// deflating rotations, then the secular GEMM `W = Q[:, kept]·Û`, then
/// column assembly in ascending eigenvalue order.
fn apply_merge(plan: &MergePlan, mut cmat: Matrix) -> (Vec<f64>, Matrix) {
    let nr = cmat.rows();
    let n = plan.lam.len();
    for &(i, j, c, s) in &plan.rots {
        for r in 0..nr {
            let a = cmat.get(r, i);
            let b = cmat.get(r, j);
            cmat.set(r, i, c * a - s * b);
            cmat.set(r, j, s * a + c * b);
        }
    }
    let m = plan.kept_cols.len();
    let mut out = Matrix::zeros(nr, n);
    if m > 0 {
        // Gather the kept columns and run the one dense merge GEMM.
        let mut q_kept = Matrix::zeros(nr, m);
        for r in 0..nr {
            let row = cmat.row(r);
            let dst = q_kept.row_mut(r);
            for (t, &c) in plan.kept_cols.iter().enumerate() {
                dst[t] = row[c];
            }
        }
        let w = matmul(&q_kept, Trans::N, &plan.ucoef, Trans::N);
        for r in 0..nr {
            let wrow = w.row(r);
            let crow = cmat.row(r);
            let orow = out.row_mut(r);
            for (oc, src) in plan.src.iter().enumerate() {
                orow[oc] = match src {
                    ColSrc::Secular(jj) => wrow[*jj],
                    ColSrc::Deflated(cc) => crow[*cc],
                };
            }
        }
    } else {
        for r in 0..nr {
            let crow = cmat.row(r);
            let orow = out.row_mut(r);
            for (oc, src) in plan.src.iter().enumerate() {
                if let ColSrc::Deflated(cc) = src {
                    orow[oc] = crow[*cc];
                }
            }
        }
    }
    (plan.lam.clone(), out)
}

/// Benchmark hooks: `#[doc(hidden)]` wrappers over internal merge
/// stages so the micro-bench harness can time them in isolation
/// (deflation + secular solve without the column algebra).
#[doc(hidden)]
pub mod bench_hooks {
    /// Eigenvalues of the rank-one update `diag(d) + ρ·zzᵀ` via the
    /// full deflation scan and secular root solve.
    pub fn secular_merge_values(d: &[f64], z: &[f64], rho: f64) -> Vec<f64> {
        super::merge_plan(d, z, rho).lam
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;
    use crate::sturm;
    use crate::tridiag::{spectrum_distance, tridiag_eigenvalues};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn check_eigen(d: &[f64], e: &[f64], tol: f64) {
        let n = d.len();
        let (lam, z) = dnc_eigen(d, e).expect("converges");
        // Ascending.
        for w in lam.windows(2) {
            assert!(w[0] <= w[1], "eigenvalues not sorted");
        }
        // Against the QL oracle.
        let ql = tridiag_eigenvalues(d, e);
        let scale = 1.0 + ql.iter().fold(0.0f64, |m, v| m.max(v.abs()));
        assert!(
            spectrum_distance(&lam, &ql) <= tol * scale,
            "D&C spectrum drifted {} from QL",
            spectrum_distance(&lam, &ql)
        );
        // Orthogonality.
        let ztz = matmul(&z, Trans::T, &z, Trans::N);
        let dev = ztz.max_diff(&Matrix::identity(n));
        assert!(dev < tol * n as f64, "ZᵀZ deviates by {dev}");
        // Residual T·Z − Z·Λ.
        let mut t = Matrix::zeros(n, n);
        for i in 0..n {
            t.set(i, i, d[i]);
            if i + 1 < n {
                t.set(i, i + 1, e[i]);
                t.set(i + 1, i, e[i]);
            }
        }
        let tz = matmul(&t, Trans::N, &z, Trans::N);
        let mut zl = z.clone();
        for i in 0..n {
            for j in 0..n {
                zl.set(i, j, z.get(i, j) * lam[j]);
            }
        }
        assert!(
            tz.max_diff(&zl) < tol * n as f64 * scale,
            "T·Z ≠ Z·Λ by {}",
            tz.max_diff(&zl)
        );
        // Values-only variant agrees exactly.
        let vals = dnc_eigenvalues(d, e).expect("converges");
        assert_eq!(vals, lam, "row-pair recursion diverged from full recursion");
    }

    #[test]
    fn laplacian_matches_analytic() {
        let n = 33;
        let d = vec![2.0; n];
        let e = vec![-1.0; n - 1];
        crate::tune::set_dnc_leaf(8);
        let (lam, _) = dnc_eigen(&d, &e).unwrap();
        for (idx, l) in lam.iter().enumerate() {
            let want =
                2.0 - 2.0 * ((idx + 1) as f64 * std::f64::consts::PI / (n as f64 + 1.0)).cos();
            assert!((l - want).abs() < 1e-12, "λ_{idx} = {l}, want {want}");
        }
        crate::tune::set_dnc_leaf(crate::tune::DEFAULT_DNC_LEAF);
    }

    #[test]
    fn small_and_awkward_sizes() {
        let mut rng = StdRng::seed_from_u64(700);
        for n in [1usize, 2, 3, 4, 5, 7, 8, 9, 13, 17, 31, 33, 64, 65] {
            let d: Vec<f64> = (0..n).map(|_| rng.gen_range(-2.0..2.0)).collect();
            let e: Vec<f64> = (0..n.saturating_sub(1)).map(|_| rng.gen_range(-1.0..1.0)).collect();
            check_eigen(&d, &e, 1e-11);
        }
    }

    #[test]
    fn forced_deep_recursion() {
        // Leaf 2 exercises every merge size down to the base case.
        let mut rng = StdRng::seed_from_u64(701);
        crate::tune::set_dnc_leaf(2);
        for n in [6usize, 11, 24, 37] {
            let d: Vec<f64> = (0..n).map(|_| rng.gen_range(-2.0..2.0)).collect();
            let e: Vec<f64> = (0..n - 1).map(|_| rng.gen_range(-1.0..1.0)).collect();
            check_eigen(&d, &e, 1e-11);
        }
        crate::tune::set_dnc_leaf(crate::tune::DEFAULT_DNC_LEAF);
    }

    #[test]
    fn zero_coupling_splits_cleanly() {
        // e[k−1] = 0 at the cut: ρ = 0, everything deflates.
        let d = vec![3.0, -1.0, 2.0, 0.5, 4.0, -2.0, 1.5, 0.25];
        let mut e = vec![0.4; 7];
        e[3] = 0.0;
        check_eigen(&d, &e, 1e-12);
    }

    #[test]
    fn heavy_deflation_clustered_spectrum() {
        // Tight clusters force the close-pole Givens deflation path.
        let mut rng = StdRng::seed_from_u64(702);
        let spectrum = gen::clustered_spectrum(48, 3, -1.0, 1.0, 1e-11);
        let a = gen::symmetric_with_spectrum(&mut rng, &spectrum);
        // Tridiagonalise via the banded path to get (d, e).
        let b = crate::BandedSym::from_dense(&a, 47, 47);
        let mut work = b;
        crate::bulge::reduce_band_to(&mut work, 1);
        let (d, e) = work.tridiagonal();
        let (lam, z) = dnc_eigen(&d, &e).unwrap();
        assert!(spectrum_distance(&lam, &spectrum) < 1e-8);
        let ztz = matmul(&z, Trans::T, &z, Trans::N);
        assert!(ztz.max_diff(&Matrix::identity(48)) < 1e-10);
    }

    #[test]
    fn wilkinson_near_degenerate_pair() {
        let n = 21;
        let d: Vec<f64> = (0..n).map(|i| (i as f64 - 10.0).abs()).collect();
        let e = vec![1.0; n - 1];
        check_eigen(&d, &e, 1e-11);
        let (lam, _) = dnc_eigen(&d, &e).unwrap();
        assert!((lam[n - 1] - 10.746194182903393).abs() < 1e-9);
    }

    #[test]
    fn graded_spectrum_against_bisection() {
        let mut rng = StdRng::seed_from_u64(703);
        let n = 50;
        let d: Vec<f64> = (0..n).map(|i| 10.0f64.powi(-(i % 12)) * rng.gen_range(0.5..2.0)).collect();
        let e: Vec<f64> = (0..n - 1).map(|i| 10.0f64.powi(-(i % 12)) * 0.3).collect();
        let (lam, _) = dnc_eigen(&d, &e).unwrap();
        let bis = sturm::bisection_eigenvalues(&d, &e, 1e-13);
        assert!(spectrum_distance(&lam, &bis) < 1e-10);
    }

    #[test]
    fn identical_poles_deflate_without_nans() {
        // All-equal diagonal with uniform coupling: maximal pole ties.
        let n = 32;
        let d = vec![1.0; n];
        let e = vec![0.5; n - 1];
        check_eigen(&d, &e, 1e-11);
    }

    #[test]
    fn values_match_full_driver_on_random_sweep() {
        let mut rng = StdRng::seed_from_u64(704);
        for _ in 0..8 {
            let n = rng.gen_range(2..70);
            let d: Vec<f64> = (0..n).map(|_| rng.gen_range(-3.0..3.0)).collect();
            let e: Vec<f64> = (0..n - 1).map(|_| rng.gen_range(-2.0..2.0)).collect();
            let vals = dnc_eigenvalues(&d, &e).unwrap();
            let (full, _) = dnc_eigen(&d, &e).unwrap();
            assert_eq!(vals, full);
        }
    }
}
