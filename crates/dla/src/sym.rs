//! Symmetric-structure kernels: the rank-2k two-sided update of
//! Eqn. (IV.1), symmetric rank-k products, banded matrix–vector
//! products, and norm estimators.
//!
//! These round out the dense-kernel surface a production library needs
//! around the eigensolver (residual computation, norm-relative
//! tolerances, convergence diagnostics).

use crate::band::BandedSym;
use crate::gemm::{gemm, Trans};
use crate::matrix::Matrix;
use rayon::prelude::*;

/// Row count above which `symv_banded` fans rows out over rayon
/// workers (each output row is an independent dot product).
const PAR_SYMV_ROWS: usize = 128;

/// The paper's aggregated two-sided update (Eqn. IV.1):
/// `A ← A + U·Vᵀ + V·Uᵀ` with `A` symmetric (`U`, `V` of shape `n×k`).
/// Exact symmetry of the result is enforced structurally (the update is
/// applied to the lower triangle and mirrored).
pub fn two_sided_update(a: &mut Matrix, u: &Matrix, v: &Matrix) {
    let n = a.rows();
    assert_eq!(n, a.cols(), "A must be square");
    assert_eq!(u.rows(), n, "U row count");
    assert_eq!(v.rows(), n, "V row count");
    assert_eq!(u.cols(), v.cols(), "U/V widths");
    let k = u.cols();
    for i in 0..n {
        for j in 0..=i {
            let mut s = 0.0;
            for l in 0..k {
                s += u.get(i, l) * v.get(j, l) + v.get(i, l) * u.get(j, l);
            }
            let val = a.get(i, j) + s;
            a.set(i, j, val);
            a.set(j, i, val);
        }
    }
}

/// Symmetric rank-k update `C ← α·A·Aᵀ + β·C` (result exactly
/// symmetric; only the lower triangle is computed).
pub fn syrk(alpha: f64, a: &Matrix, beta: f64, c: &mut Matrix) {
    let n = a.rows();
    assert_eq!(c.rows(), n);
    assert_eq!(c.cols(), n);
    let k = a.cols();
    for i in 0..n {
        for j in 0..=i {
            let mut s = 0.0;
            for l in 0..k {
                s += a.get(i, l) * a.get(j, l);
            }
            let val = alpha * s + beta * c.get(i, j);
            c.set(i, j, val);
            c.set(j, i, val);
        }
    }
}

/// Banded symmetric matrix–vector product `y = B·x` in `O(n·b)`.
///
/// Row-oriented: each `y[i]` is an independent dot product over the
/// band — the strictly-lower part of row `i` strides through the slab
/// (one element per stored column), the diagonal-and-upper part is a
/// contiguous slice — so rows parallelize over rayon workers with no
/// write sharing, deterministically.
pub fn symv_banded(b: &BandedSym, x: &[f64]) -> Vec<f64> {
    let n = b.n();
    assert_eq!(x.len(), n);
    let cap = b.capacity();
    let w = cap + 1;
    let data = b.bands();
    let row = |i: usize| -> f64 {
        let mut s = 0.0;
        // Entries (i, j), j < i, within the band: stored at
        // data[j·(cap+1) + (i−j)] = data[j·cap + i].
        for j in i.saturating_sub(cap)..i {
            s += data[j * cap + i] * x[j];
        }
        // Diagonal and super-diagonal part: the stored column i of the
        // lower bands, read as row i of the symmetric matrix.
        let len = n.min(i + w) - i;
        for (bv, xv) in data[i * w..i * w + len].iter().zip(&x[i..i + len]) {
            s += bv * xv;
        }
        s
    };
    let mut y = vec![0.0; n];
    if n >= PAR_SYMV_ROWS {
        y.par_iter_mut().enumerate().for_each(|(i, yi)| *yi = row(i));
    } else {
        for (i, yi) in y.iter_mut().enumerate() {
            *yi = row(i);
        }
    }
    y
}

/// Matrix 1-norm (max column sum).
pub fn one_norm(a: &Matrix) -> f64 {
    let mut best = 0.0f64;
    for j in 0..a.cols() {
        let mut s = 0.0;
        for i in 0..a.rows() {
            s += a.get(i, j).abs();
        }
        best = best.max(s);
    }
    best
}

/// Matrix ∞-norm (max row sum).
pub fn inf_norm(a: &Matrix) -> f64 {
    let mut best = 0.0f64;
    for i in 0..a.rows() {
        let s: f64 = a.row(i).iter().map(|v| v.abs()).sum();
        best = best.max(s);
    }
    best
}

/// 2-norm estimate by power iteration on `AᵀA` (`iters` steps).
/// For symmetric `A` this converges to `|λ|_max`.
pub fn two_norm_est(a: &Matrix, iters: usize) -> f64 {
    let (m, n) = (a.rows(), a.cols());
    if m == 0 || n == 0 {
        return 0.0;
    }
    let mut x = Matrix::from_fn(n, 1, |i, _| 1.0 + (i as f64 * 0.7).sin());
    let mut norm = 0.0;
    for _ in 0..iters.max(1) {
        // y = A·x; x ← Aᵀ·y (normalized).
        let mut y = Matrix::zeros(m, 1);
        gemm(1.0, a, Trans::N, &x, Trans::N, 0.0, &mut y);
        let mut z = Matrix::zeros(n, 1);
        gemm(1.0, a, Trans::T, &y, Trans::N, 0.0, &mut z);
        let zn = z.norm_fro();
        if zn == 0.0 {
            return 0.0;
        }
        norm = (zn / x.norm_fro().max(1e-300)).sqrt();
        z.scale(1.0 / zn);
        x = z;
    }
    norm
}

/// Max-norm residual `‖A·V − V·diag(λ)‖_max` — the standard eigenpair
/// quality metric used throughout the tests and the CLI.
pub fn eigen_residual(a: &Matrix, v: &Matrix, lambda: &[f64]) -> f64 {
    let n = a.rows();
    assert_eq!(v.rows(), n);
    assert_eq!(v.cols(), lambda.len());
    let mut av = Matrix::zeros(n, v.cols());
    gemm(1.0, a, Trans::N, v, Trans::N, 0.0, &mut av);
    let mut vl = v.clone();
    for i in 0..n {
        for (j, l) in lambda.iter().enumerate() {
            vl.set(i, j, v.get(i, j) * l);
        }
    }
    av.max_diff(&vl)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::matmul;
    use crate::gen;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn two_sided_update_matches_gemms() {
        let mut rng = StdRng::seed_from_u64(70);
        let mut a = gen::random_symmetric(&mut rng, 10);
        let u = gen::random_matrix(&mut rng, 10, 3);
        let v = gen::random_matrix(&mut rng, 10, 3);
        let mut want = a.clone();
        let uvt = matmul(&u, Trans::N, &v, Trans::T);
        want.axpy(1.0, &uvt);
        want.axpy(1.0, &uvt.transpose());
        two_sided_update(&mut a, &u, &v);
        assert!(a.max_diff(&want) < 1e-12);
        assert_eq!(a.asymmetry(), 0.0);
    }

    #[test]
    fn syrk_matches_gemm() {
        let mut rng = StdRng::seed_from_u64(71);
        let a = gen::random_matrix(&mut rng, 8, 5);
        let mut c = gen::random_symmetric(&mut rng, 8);
        let mut want = c.clone();
        want.scale(0.5);
        want.axpy(2.0, &matmul(&a, Trans::N, &a, Trans::T));
        syrk(2.0, &a, 0.5, &mut c);
        assert!(c.max_diff(&want) < 1e-12);
        assert_eq!(c.asymmetry(), 0.0);
    }

    #[test]
    fn banded_symv_matches_dense() {
        let mut rng = StdRng::seed_from_u64(72);
        let dense = gen::random_banded(&mut rng, 14, 3);
        let b = BandedSym::from_dense(&dense, 3, 5);
        let x: Vec<f64> = (0..14).map(|i| (i as f64 * 0.3).cos()).collect();
        let want = crate::gemm::symv(&dense, &x);
        let got = symv_banded(&b, &x);
        for (a, bb) in want.iter().zip(&got) {
            assert!((a - bb).abs() < 1e-12);
        }
    }

    #[test]
    fn norms_on_known_matrix() {
        let a = Matrix::from_vec(2, 3, vec![1.0, -2.0, 3.0, -4.0, 5.0, -6.0]);
        assert_eq!(one_norm(&a), 9.0); // col 2: |3| + |−6|... cols sums: 5, 7, 9
        assert_eq!(inf_norm(&a), 15.0); // row 1: 4+5+6
    }

    #[test]
    fn two_norm_estimate_close_to_spectral_norm() {
        let mut rng = StdRng::seed_from_u64(73);
        let lambda = gen::linspace_spectrum(12, -3.0, 7.0);
        let a = gen::symmetric_with_spectrum(&mut rng, &lambda);
        let est = two_norm_est(&a, 60);
        assert!((est - 7.0).abs() < 0.05, "estimate {est}");
    }

    #[test]
    fn eigen_residual_zero_for_exact_pairs() {
        let mut rng = StdRng::seed_from_u64(74);
        let q = gen::random_orthogonal(&mut rng, 6);
        let lambda = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        // A = QΛQᵀ, so (Q, Λ) are exact eigenpairs.
        let mut ql = q.clone();
        for i in 0..6 {
            for j in 0..6 {
                ql.set(i, j, q.get(i, j) * lambda[j]);
            }
        }
        let a = matmul(&ql, Trans::N, &q, Trans::T);
        assert!(eigen_residual(&a, &q, &lambda) < 1e-12);
    }
}
