//! Property sweeps for the divide-and-conquer tridiagonal eigensolver
//! against the repo's independent oracles — implicit-shift QL and
//! Sturm-sequence bisection — over the spectra that stress its two
//! hard paths:
//!
//! * **clustered** spectra (tight eigenvalue groups, spread down to
//!   1e-12) drive the deflation machinery: nearly every pole pair
//!   rotates out and the secular systems collapse;
//! * **graded** spectra (geometric decay over many orders of
//!   magnitude) stress the secular root finder's relative accuracy at
//!   poles of wildly different scale.
//!
//! Sizes sample the awkward cases: the minimal `n ∈ {2, 3}`, primes
//! (recursion splits are never balanced), and `2^k ± 1` straddling the
//! power-of-two splits. Each case checks eigenvalue agreement with QL
//! and Sturm, eigenvector orthogonality, the `T·Z = Z·Λ` residual, and
//! exact equality of the value-only and full drivers.

use ca_dla::bulge::reduce_band_to;
use ca_dla::gemm::{matmul, Trans};
use ca_dla::tridiag::spectrum_distance;
use ca_dla::{dnc, gen, sturm, BandedSym, Matrix};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Awkward problem sizes: minimal, primes, `2^k ± 1`.
const SIZES: [usize; 12] = [2, 3, 5, 7, 13, 17, 31, 33, 47, 63, 65, 97];

/// Reduce a dense symmetric matrix with a prescribed spectrum to
/// tridiagonal form (orthogonal similarity preserves the spectrum).
fn tridiag_with_spectrum(seed: u64, spectrum: &[f64]) -> (Vec<f64>, Vec<f64>) {
    let n = spectrum.len();
    let mut rng = StdRng::seed_from_u64(seed);
    let a = gen::symmetric_with_spectrum(&mut rng, spectrum);
    if n == 1 {
        return (vec![a.get(0, 0)], vec![]);
    }
    let mut band = BandedSym::from_dense(&a, n - 1, n - 1);
    reduce_band_to(&mut band, 1);
    band.tridiagonal()
}

/// All oracle checks for one `(d, e)` instance.
fn check_against_oracles(d: &[f64], e: &[f64], want: &[f64], tol: f64) {
    let n = d.len();
    let (lam, z) = dnc::dnc_eigen(d, e).expect("dnc converges");
    let vals = dnc::dnc_eigenvalues(d, e).expect("dnc converges");
    assert_eq!(vals, lam, "value-only and full drivers disagree");

    // Eigenvalues vs the prescribed spectrum, QL, and Sturm bisection.
    assert!(
        spectrum_distance(&lam, want) < tol,
        "n={n}: spectrum drift {} vs prescribed",
        spectrum_distance(&lam, want)
    );
    let ql = ca_dla::tridiag::tridiag_eigenvalues(d, e);
    assert!(
        spectrum_distance(&lam, &ql) < tol,
        "n={n}: drift {} vs QL",
        spectrum_distance(&lam, &ql)
    );
    let bis = sturm::bisection_eigenvalues(d, e, 1e-12);
    assert!(
        spectrum_distance(&lam, &bis) < tol.max(1e-10),
        "n={n}: drift {} vs Sturm bisection",
        spectrum_distance(&lam, &bis)
    );

    // Z orthonormal.
    let ztz = matmul(&z, Trans::T, &z, Trans::N);
    let orth = ztz.max_diff(&Matrix::identity(n));
    assert!(orth < tol, "n={n}: ZᵀZ deviates by {orth}");

    // T·Z = Z·Λ.
    let mut resid = 0.0f64;
    for (j, &lam_j) in lam.iter().enumerate() {
        for i in 0..n {
            let mut tz = d[i] * z.get(i, j);
            if i > 0 {
                tz += e[i - 1] * z.get(i - 1, j);
            }
            if i + 1 < n {
                tz += e[i] * z.get(i + 1, j);
            }
            resid = resid.max((tz - lam_j * z.get(i, j)).abs());
        }
    }
    let scale = want.iter().fold(1.0f64, |m, v| m.max(v.abs()));
    assert!(resid < tol * scale, "n={n}: residual {resid}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn clustered_spectra_heavy_deflation(
        size_ix in 0usize..SIZES.len(),
        clusters in 1usize..5,
        spread_exp in 3u32..12,
        seed in 0u64..1u64 << 48,
    ) {
        let n = SIZES[size_ix];
        let spread = 10f64.powi(-(spread_exp as i32));
        let spectrum = gen::clustered_spectrum(n, clusters.min(n), -2.0, 2.0, spread);
        let (d, e) = tridiag_with_spectrum(seed, &spectrum);
        check_against_oracles(&d, &e, &spectrum, 1e-8);
    }

    #[test]
    fn graded_spectra_secular_accuracy(
        size_ix in 0usize..SIZES.len(),
        decay in 0.2f64..0.9,
        seed in 0u64..1u64 << 48,
    ) {
        let n = SIZES[size_ix];
        let spectrum = gen::graded_spectrum(n, 10.0, decay);
        let (d, e) = tridiag_with_spectrum(seed, &spectrum);
        check_against_oracles(&d, &e, &spectrum, 1e-8);
    }

    #[test]
    fn random_tridiagonals_forced_deep_recursion(
        size_ix in 0usize..SIZES.len(),
        seed in 0u64..1u64 << 48,
    ) {
        // Raw random (d, e) with a tiny leaf so the recursion tree is as
        // deep as the size permits; oracle is QL + Sturm on the same data.
        let n = SIZES[size_ix];
        let mut rng = StdRng::seed_from_u64(seed);
        let dense = gen::random_banded(&mut rng, n, 1);
        let d: Vec<f64> = (0..n).map(|i| dense.get(i, i)).collect();
        let e: Vec<f64> = (0..n - 1).map(|i| dense.get(i + 1, i)).collect();

        let leaf0 = ca_dla::tune::dnc_leaf();
        ca_dla::tune::set_dnc_leaf(2);
        let result = std::panic::catch_unwind(|| {
            let ql = ca_dla::tridiag::tridiag_eigenvalues(&d, &e);
            check_against_oracles(&d, &e, &ql, 1e-9);
        });
        ca_dla::tune::set_dnc_leaf(leaf0);
        if let Err(p) = result {
            std::panic::resume_unwind(p);
        }
    }
}
