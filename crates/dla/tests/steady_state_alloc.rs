//! Steady-state allocation check for the zero-copy chase engine.
//!
//! A counting global allocator wraps `System`; after one warm-up pass
//! over a full `h = 1` chase plan (which converges the thread arena's
//! buffer-size profile), replaying the identical plan on a fresh band
//! copy must perform **zero** heap allocations — every scratch panel
//! comes out of the arena and every GEMM in this regime sits below the
//! packing threshold.
//!
//! Single test in this file on purpose: the counter is process-global
//! and libtest runs sibling tests concurrently.

use ca_dla::bulge::{chase_plan_to, execute_chase};
use ca_dla::gen;
use ca_dla::BandedSym;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

struct CountingAlloc;

static COUNTING: AtomicBool = AtomicBool::new(false);
static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn steady_state_chase_is_allocation_free() {
    let (n, b) = (96usize, 8usize);
    let mut rng = StdRng::seed_from_u64(4242);
    let dense = gen::random_banded(&mut rng, n, b);
    let cap = (2 * b).min(n - 1);
    let plan = chase_plan_to(n, b, 1);
    assert!(plan.len() > 100, "plan too small to be a meaningful workload");

    // Warm-up: converge this thread's arena to the plan's size profile.
    let mut warm = BandedSym::from_dense(&dense, b, cap);
    for op in &plan {
        execute_chase(&mut warm, op);
    }

    // Steady state: the identical plan on a fresh copy allocates nothing.
    let mut cold = BandedSym::from_dense(&dense, b, cap);
    ALLOCS.store(0, Ordering::SeqCst);
    COUNTING.store(true, Ordering::SeqCst);
    for op in &plan {
        execute_chase(&mut cold, op);
    }
    COUNTING.store(false, Ordering::SeqCst);
    let count = ALLOCS.load(Ordering::SeqCst);
    assert_eq!(count, 0, "steady-state chase performed {count} heap allocations");
}
