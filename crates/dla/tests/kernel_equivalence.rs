//! Bitwise-equivalence oracles for the zero-copy chase engine and the
//! parallel spectral kernels.
//!
//! The zero-copy engine (arena-backed strips, in-place QR, fused
//! negation, vectorized Householder kernels) is *claimed* to be bitwise
//! identical to the seed's dense-window path — not merely close. These
//! properties pin that claim over ragged shapes (`n` not a multiple of
//! the band, `h ∤ b`) by replaying full chase plans through both engines
//! and `assert_eq!`-ing the band storage and the recorded `(U, T)`
//! factors, with zero tolerance. Likewise the rayon-parallel bisection
//! must return exactly the sequential eigenvalues, in order.

use ca_dla::bulge::{
    chase_plan_to, execute_chase, execute_chase_recording, execute_chase_recording_reference,
    execute_chase_reference, zero_copy_enabled,
};
use ca_dla::gen;
use ca_dla::sturm::{bisection_eigenvalues, kth_eigenvalue};
use ca_dla::BandedSym;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const SIZES: [usize; 3] = [48, 65, 129];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Full chase plans through the zero-copy banded engine and the
    /// dense-window reference produce bitwise identical band matrices.
    #[test]
    fn zero_copy_chase_is_bitwise_identical(
        ni in 0usize..3,
        b in 5usize..12,
        h in 2usize..8,
        seed in 0u64..1024,
    ) {
        prop_assume!(h < b && b % h != 0); // ragged: h ∤ b
        prop_assert!(zero_copy_enabled(), "engine must be on by default");
        let n = SIZES[ni];
        let mut rng = StdRng::seed_from_u64(seed);
        let dense = gen::random_banded(&mut rng, n, b);
        let cap = (2 * b).min(n - 1);
        let mut fast = BandedSym::from_dense(&dense, b, cap);
        let mut refr = fast.clone();
        for op in chase_plan_to(n, b, h) {
            execute_chase(&mut fast, &op);
            execute_chase_reference(&mut refr, &op);
        }
        prop_assert_eq!(fast, refr);
    }

    /// The recording variants agree op-by-op: same `(U, T)` factors
    /// (bit for bit) and the same band state after every operation.
    #[test]
    fn recorded_factors_are_bitwise_identical(
        ni in 0usize..3,
        b in 4usize..10,
        h in 2usize..7,
        seed in 0u64..1024,
    ) {
        prop_assume!(h < b && b % h != 0);
        let n = SIZES[ni];
        let mut rng = StdRng::seed_from_u64(seed.wrapping_add(7));
        let dense = gen::random_banded(&mut rng, n, b);
        let cap = (2 * b).min(n - 1);
        let mut fast = BandedSym::from_dense(&dense, b, cap);
        let mut refr = fast.clone();
        for op in chase_plan_to(n, b, h) {
            let (uf, tf) = execute_chase_recording(&mut fast, &op);
            let (ur, tr) = execute_chase_recording_reference(&mut refr, &op);
            prop_assert_eq!(&uf, &ur, "U diverged at op ({}, {})", op.i, op.j);
            prop_assert_eq!(&tf, &tr, "T diverged at op ({}, {})", op.i, op.j);
            prop_assert_eq!(&fast, &refr, "band diverged at op ({}, {})", op.i, op.j);
        }
    }

    /// Parallel bisection returns exactly the sequential eigenvalues.
    #[test]
    fn parallel_bisection_matches_sequential(
        n in 2usize..96,
        seed in 0u64..1024,
    ) {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_add(13));
        let t = gen::random_banded(&mut rng, n, 1);
        let d: Vec<f64> = (0..n).map(|i| t.get(i, i)).collect();
        let e: Vec<f64> = (1..n).map(|i| t.get(i, i - 1)).collect();
        let par = bisection_eigenvalues(&d, &e, 0.0);
        let seq: Vec<f64> = (0..n).map(|k| kth_eigenvalue(&d, &e, k, 0.0)).collect();
        prop_assert_eq!(par, seq);
    }
}

/// An `h = 1` plan (direct tridiagonalization, the shape that dominates
/// the sequential finale) through both engines, deterministic.
#[test]
fn h_equals_one_plan_is_bitwise_identical() {
    let (n, b) = (96usize, 8usize);
    let mut rng = StdRng::seed_from_u64(99);
    let dense = gen::random_banded(&mut rng, n, b);
    let cap = (2 * b).min(n - 1);
    let mut fast = BandedSym::from_dense(&dense, b, cap);
    let mut refr = fast.clone();
    for op in chase_plan_to(n, b, 1) {
        execute_chase(&mut fast, &op);
        execute_chase_reference(&mut refr, &op);
    }
    assert_eq!(fast, refr);
}
