//! Property tests for the cache-blocked GEMM: for arbitrary shapes,
//! orientations and α/β, the blocked/packed kernel must agree with a
//! straightforward triple-loop reference. Shapes are drawn on both
//! sides of the small-product threshold so the fused small kernel, the
//! packing edge cases (partial MR/NR strips), and the multi-panel KC
//! accumulation are all exercised.

use ca_dla::gemm::{gemm, Trans};
use ca_dla::Matrix;
use proptest::prelude::*;

/// Triple-loop reference: `β·C + α·op(A)·op(B)`.
fn reference(
    alpha: f64,
    a: &Matrix,
    ta: Trans,
    b: &Matrix,
    tb: Trans,
    beta: f64,
    c0: &Matrix,
) -> Matrix {
    let a_eff = match ta {
        Trans::N => a.clone(),
        Trans::T => a.transpose(),
    };
    let b_eff = match tb {
        Trans::N => b.clone(),
        Trans::T => b.transpose(),
    };
    let (m, k, n) = (a_eff.rows(), a_eff.cols(), b_eff.cols());
    let mut c = Matrix::zeros(m, n);
    for i in 0..m {
        for j in 0..n {
            let mut s = 0.0;
            for l in 0..k {
                s += a_eff.get(i, l) * b_eff.get(l, j);
            }
            c.set(i, j, beta * c0.get(i, j) + alpha * s);
        }
    }
    c
}

fn trans_strategy() -> impl Strategy<Value = Trans> {
    (0usize..=1).prop_map(|t| if t == 0 { Trans::N } else { Trans::T })
}

fn fill(rows: usize, cols: usize, vals: Vec<f64>) -> Matrix {
    Matrix::from_fn(rows, cols, |i, j| vals[(i * cols + j) % vals.len()])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn blocked_gemm_matches_reference(
        dims in (1usize..=160, 1usize..=96, 1usize..=160),
        ta in trans_strategy(),
        tb in trans_strategy(),
        coeffs in (-2.0f64..2.0, -2.0f64..2.0),
        vals in proptest::collection::vec(-1.0f64..1.0, 17usize..=64),
    ) {
        let (m, k, n) = dims;
        let (alpha, beta) = coeffs;
        let a = match ta {
            Trans::N => fill(m, k, vals.clone()),
            Trans::T => fill(k, m, vals.clone()),
        };
        let b = match tb {
            Trans::N => fill(k, n, vals.clone()),
            Trans::T => fill(n, k, vals.clone()),
        };
        let c0 = fill(m, n, vals);

        let mut c = c0.clone();
        gemm(alpha, &a, ta, &b, tb, beta, &mut c);
        let want = reference(alpha, &a, ta, &b, tb, beta, &c0);

        let tol = 1e-12 * (k as f64 + 1.0);
        prop_assert!(
            c.max_diff(&want) < tol,
            "m={m} k={k} n={n} ta={ta:?} tb={tb:?} α={alpha} β={beta}: diff {}",
            c.max_diff(&want)
        );
    }

    #[test]
    fn gemm_distributes_over_scaled_inputs(
        dims in (8usize..=80, 4usize..=48, 8usize..=80),
        scale in 0.25f64..4.0,
        vals in proptest::collection::vec(-1.0f64..1.0, 23usize..=64),
    ) {
        // α·(sA)·B == (αs)·A·B — the blocked kernel must be linear in α.
        let (m, k, n) = dims;
        let a = fill(m, k, vals.clone());
        let b = fill(k, n, vals);
        let mut sa = a.clone();
        sa.scale(scale);

        let mut c1 = Matrix::zeros(m, n);
        gemm(1.0, &sa, Trans::N, &b, Trans::N, 0.0, &mut c1);
        let mut c2 = Matrix::zeros(m, n);
        gemm(scale, &a, Trans::N, &b, Trans::N, 0.0, &mut c2);

        let tol = 1e-11 * (k as f64 + 1.0);
        prop_assert!(c1.max_diff(&c2) < tol, "diff {}", c1.max_diff(&c2));
    }
}
