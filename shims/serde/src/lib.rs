//! Offline stand-in for the `serde` crate.
//!
//! The workspace only ever *serializes* plain records to JSON lines
//! (experiment results, cost ledgers), so this shim collapses serde's
//! data model to a single trait: [`Serialize::write_json`]. The
//! `Serialize` derive (from the sibling `serde_derive` shim) emits a
//! JSON object of the struct's named fields; `Deserialize` derives to
//! nothing and exists only so `#[derive(Deserialize)]` keeps compiling.

pub use serde_derive::{Deserialize, Serialize};

/// Types that can write themselves as a JSON value.
pub trait Serialize {
    /// Append this value's JSON representation to `out`.
    fn write_json(&self, out: &mut String);
}

macro_rules! impl_display_json {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn write_json(&self, out: &mut String) {
                out.push_str(&self.to_string());
            }
        }
    )*};
}
impl_display_json!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, bool);

impl Serialize for f64 {
    fn write_json(&self, out: &mut String) {
        if self.is_finite() {
            out.push_str(&format!("{self}"));
        } else {
            // JSON has no NaN/Inf literals.
            out.push_str("null");
        }
    }
}

impl Serialize for f32 {
    fn write_json(&self, out: &mut String) {
        (*self as f64).write_json(out);
    }
}

/// Append `s` as a JSON string literal (escaping quotes, backslashes
/// and control characters).
fn write_json_str(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

impl Serialize for str {
    fn write_json(&self, out: &mut String) {
        write_json_str(self, out);
    }
}

impl Serialize for String {
    fn write_json(&self, out: &mut String) {
        write_json_str(self, out);
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn write_json(&self, out: &mut String) {
        self.as_slice().write_json(out);
    }
}

impl<T: Serialize> Serialize for [T] {
    fn write_json(&self, out: &mut String) {
        out.push('[');
        for (i, v) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            v.write_json(out);
        }
        out.push(']');
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn write_json(&self, out: &mut String) {
        match self {
            Some(v) => v.write_json(out),
            None => out.push_str("null"),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn write_json(&self, out: &mut String) {
        (**self).write_json(out);
    }
}

#[cfg(test)]
mod tests {
    use super::Serialize;

    fn json<T: Serialize + ?Sized>(v: &T) -> String {
        let mut s = String::new();
        v.write_json(&mut s);
        s
    }

    #[test]
    fn primitives() {
        assert_eq!(json(&42u64), "42");
        assert_eq!(json(&-3i64), "-3");
        assert_eq!(json(&true), "true");
        assert_eq!(json(&1.5f64), "1.5");
        assert_eq!(json(&f64::NAN), "null");
    }

    #[test]
    fn strings_escape() {
        assert_eq!(json("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
    }

    #[test]
    fn vectors_and_options() {
        assert_eq!(json(&vec![1u64, 2, 3]), "[1,2,3]");
        assert_eq!(json(&Some(7u64)), "7");
        assert_eq!(json(&Option::<u64>::None), "null");
    }
}
