//! Offline stand-in for `serde_json`: only [`to_string`], over the
//! local serde shim's JSON-writing `Serialize` trait.

use std::fmt;

/// Serialization error. The shim's serializers are infallible, so this
/// type exists only to keep `serde_json::to_string(..)?`-style call
/// sites compiling.
#[derive(Debug)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde_json shim error")
    }
}

impl std::error::Error for Error {}

/// Serialize `value` as a JSON string.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    value.write_json(&mut out);
    Ok(out)
}

#[cfg(test)]
mod tests {
    #[test]
    fn to_string_writes_json() {
        assert_eq!(super::to_string(&vec![1u64, 2]).unwrap(), "[1,2]");
        assert_eq!(super::to_string("x").unwrap(), "\"x\"");
    }
}
