//! Derive macros for the offline `serde` shim.
//!
//! Supports exactly what this workspace derives on: non-generic structs
//! with named fields whose types implement the shim's `Serialize`
//! trait. The token parsing is hand-rolled (no `syn`/`quote` — the
//! build environment has no registry access), so anything fancier
//! (enums, generics, tuple structs, serde attributes) is rejected with
//! a compile error rather than silently mis-serialized.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derive the shim's `Serialize` (JSON object of the named fields).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let (name, fields) = match parse_struct(input) {
        Ok(v) => v,
        Err(msg) => {
            return format!("compile_error!({msg:?});").parse().unwrap();
        }
    };
    let mut body = String::new();
    body.push_str("out.push('{');\n");
    for (i, field) in fields.iter().enumerate() {
        if i > 0 {
            body.push_str("out.push(',');\n");
        }
        body.push_str(&format!(
            "out.push_str(\"\\\"{field}\\\":\");\n\
             ::serde::Serialize::write_json(&self.{field}, out);\n"
        ));
    }
    body.push_str("out.push('}');");
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn write_json(&self, out: &mut ::std::string::String) {{\n{body}\n}}\n\
         }}"
    )
    .parse()
    .unwrap()
}

/// Derive `Deserialize` — a no-op marker: nothing in this workspace
/// deserializes, the derive only has to exist so `#[derive(Deserialize)]`
/// keeps compiling.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Extract `(struct_name, field_names)` from a derive input.
fn parse_struct(input: TokenStream) -> Result<(String, Vec<String>), String> {
    let mut tokens = input.into_iter().peekable();
    // Skip attributes (`#[...]`) and visibility, find `struct Name`.
    let mut name = None;
    while let Some(tt) = tokens.next() {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                // Consume the following [...] group.
                tokens.next();
            }
            TokenTree::Ident(id) if id.to_string() == "struct" => {
                match tokens.next() {
                    Some(TokenTree::Ident(n)) => name = Some(n.to_string()),
                    _ => return Err("serde shim derive: expected struct name".into()),
                }
                break;
            }
            TokenTree::Ident(id) if id.to_string() == "enum" => {
                return Err("serde shim derive: enums are not supported".into());
            }
            _ => {}
        }
    }
    let name = name.ok_or_else(|| "serde shim derive: not a struct".to_string())?;
    // The next brace group holds the named fields. Anything between the
    // name and the brace (generics, where clauses) is unsupported.
    let body = loop {
        match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g,
            Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                return Err("serde shim derive: generic structs are not supported".into());
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                return Err("serde shim derive: tuple structs are not supported".into());
            }
            Some(_) => continue,
            None => return Err("serde shim derive: struct body not found".into()),
        }
    };
    // Parse `(#[attr])* (pub)? name : Type ,` sequences. Field types may
    // contain `<...>` (e.g. `Vec<f64>`), whose commas must not split
    // fields.
    let mut fields = Vec::new();
    let mut inner = body.stream().into_iter().peekable();
    'fields: while inner.peek().is_some() {
        // Skip attributes and visibility.
        let field_name = loop {
            match inner.next() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    inner.next();
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    // `pub(crate)` etc.: skip a following paren group.
                    if let Some(TokenTree::Group(g)) = inner.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            inner.next();
                        }
                    }
                }
                Some(TokenTree::Ident(id)) => break id.to_string(),
                Some(_) => return Err("serde shim derive: unexpected token in fields".into()),
                None => break 'fields,
            }
        };
        match inner.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            _ => return Err("serde shim derive: expected `:` after field name".into()),
        }
        fields.push(field_name);
        // Skip the type up to a top-level comma.
        let mut angle_depth = 0i32;
        loop {
            match inner.next() {
                Some(TokenTree::Punct(p)) if p.as_char() == '<' => angle_depth += 1,
                Some(TokenTree::Punct(p)) if p.as_char() == '>' => angle_depth -= 1,
                Some(TokenTree::Punct(p)) if p.as_char() == ',' && angle_depth == 0 => break,
                Some(_) => {}
                None => break 'fields,
            }
        }
    }
    Ok((name, fields))
}
