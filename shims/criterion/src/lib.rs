//! Offline stand-in for the `criterion` crate.
//!
//! Implements the subset of criterion's API the workspace's benches
//! use — `benchmark_group` / `bench_with_input` / `bench_function`,
//! `BenchmarkId`, the `criterion_group!`/`criterion_main!` macros —
//! with a simple median-of-samples wall-clock measurement. `--quick`
//! (or `CRITERION_QUICK=1`) cuts warm-up and sample counts for CI.
//! Results are printed as `group/id: <median> (<samples> samples)`
//! lines and, when `CRITERION_JSON` names a file, appended to it as
//! JSON-lines records.

use std::io::Write as _;
use std::time::{Duration, Instant};

/// Benchmark harness configuration and entry point.
pub struct Criterion {
    sample_size: usize,
    quick: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let args: Vec<String> = std::env::args().collect();
        let quick = args.iter().any(|a| a == "--quick")
            || std::env::var("CRITERION_QUICK").is_ok_and(|v| v != "0");
        Self {
            sample_size: 20,
            quick,
        }
    }
}

impl Criterion {
    /// Set the number of timing samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }

    /// Measure a single benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) {
        let samples = self.effective_samples();
        let mut b = Bencher {
            samples,
            durations: Vec::new(),
        };
        f(&mut b);
        report(id, &b.durations);
    }

    fn effective_samples(&self) -> usize {
        if self.quick {
            self.sample_size.clamp(2, 5)
        } else {
            self.sample_size
        }
    }
}

/// A named group of benchmarks sharing a prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Measure one parameterized benchmark in the group.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        let samples = self.criterion.effective_samples();
        let mut b = Bencher {
            samples,
            durations: Vec::new(),
        };
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id.0), &b.durations);
    }

    /// Finish the group (printing is incremental; this is a no-op kept
    /// for API compatibility).
    pub fn finish(self) {}
}

/// Identifier of one benchmark case within a group.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Identify the case by its parameter's display form.
    pub fn from_parameter<D: std::fmt::Display>(p: D) -> Self {
        Self(p.to_string())
    }

    /// Identify the case by a function name and parameter.
    pub fn new<D: std::fmt::Display>(name: &str, p: D) -> Self {
        Self(format!("{name}/{p}"))
    }
}

/// Timing driver passed to each benchmark closure.
pub struct Bencher {
    samples: usize,
    durations: Vec<Duration>,
}

impl Bencher {
    /// Measure `f`, calling it once per sample after one warm-up call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        std::hint::black_box(f());
        for _ in 0..self.samples {
            let t0 = Instant::now();
            std::hint::black_box(f());
            self.durations.push(t0.elapsed());
        }
    }
}

/// Print (and optionally record) one benchmark's median timing.
fn report(id: &str, durations: &[Duration]) {
    if durations.is_empty() {
        println!("{id}: no samples");
        return;
    }
    let mut sorted: Vec<Duration> = durations.to_vec();
    sorted.sort();
    let median = sorted[sorted.len() / 2];
    let best = sorted[0];
    println!("{id}: median {median:?}, best {best:?} ({} samples)", sorted.len());
    if let Ok(path) = std::env::var("CRITERION_JSON") {
        if let Ok(mut f) = std::fs::OpenOptions::new().create(true).append(true).open(path) {
            let _ = writeln!(
                f,
                "{{\"id\":\"{}\",\"median_ns\":{},\"best_ns\":{},\"samples\":{}}}",
                id.replace('"', "'"),
                median.as_nanos(),
                best.as_nanos(),
                sorted.len()
            );
        }
    }
}

/// Define a benchmark group: either `criterion_group!(name, fn, ...)`
/// or the long form with `config = ...` and `targets = ...`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Define `main()` running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default().sample_size(3);
        let mut count = 0u32;
        c.bench_function("noop", |b| {
            b.iter(|| {
                count += 1;
            })
        });
        // one warm-up + 3 samples (or quick-mode minimum of 2).
        assert!(count >= 3);
    }

    #[test]
    fn group_bench_with_input() {
        let mut c = Criterion::default().sample_size(2);
        let mut g = c.benchmark_group("g");
        g.bench_with_input(BenchmarkId::from_parameter(7), &7usize, |b, &n| {
            b.iter(|| n * 2)
        });
        g.finish();
    }
}
