//! Offline stand-in for the `rayon` crate.
//!
//! The build environment has no access to crates.io, so this local shim
//! implements the subset of rayon's data-parallel API the workspace
//! uses, with real shared-memory parallelism built on
//! [`std::thread::scope`]. Work is split into one contiguous block per
//! worker (fork-join, no work stealing); with a single hardware thread
//! every operation degenerates to an inline sequential loop with zero
//! spawn overhead.
//!
//! Supported surface:
//! * `(a..b).into_par_iter()` with `for_each`, `map(..).collect::<Vec<_>>()`
//! * `slice.par_iter()` / `slice.par_iter_mut()` (+ `enumerate`)
//! * `slice.par_chunks_mut(n)` (+ `enumerate`)
//! * [`join`], [`current_num_threads`]
//!
//! The worker count honors `RAYON_NUM_THREADS`, defaulting to the
//! available hardware parallelism.

use std::sync::OnceLock;

/// Number of worker threads used for parallel operations.
pub fn current_num_threads() -> usize {
    static N: OnceLock<usize> = OnceLock::new();
    *N.get_or_init(|| {
        if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
            if let Ok(n) = v.trim().parse::<usize>() {
                if n >= 1 {
                    return n;
                }
            }
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// Partition `0..n` into at most `current_num_threads()` contiguous
/// blocks and return their boundaries (length = blocks + 1).
fn block_bounds(n: usize) -> Vec<usize> {
    let t = current_num_threads().min(n).max(1);
    (0..=t).map(|w| w * n / t).collect()
}

/// Run `a` and `b` potentially in parallel, returning both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_num_threads() <= 1 {
        let ra = a();
        let rb = b();
        return (ra, rb);
    }
    std::thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        (ra, hb.join().expect("rayon shim: worker panicked"))
    })
}

/// Run `f(lo, hi)` over a contiguous partition of `0..n`, one block per
/// worker thread.
fn run_partitioned<F: Fn(usize, usize) + Sync>(n: usize, f: F) {
    if n == 0 {
        return;
    }
    let bounds = block_bounds(n);
    if bounds.len() <= 2 {
        f(0, n);
        return;
    }
    let f = &f;
    std::thread::scope(|s| {
        for w in bounds.windows(2) {
            let (lo, hi) = (w[0], w[1]);
            if lo < hi {
                s.spawn(move || f(lo, hi));
            }
        }
    });
}

/// `map(..).collect::<Vec<_>>()` engine: evaluate `f(i)` for `i ∈ 0..n`
/// in parallel, preserving index order.
fn map_collect<T: Send, F: Fn(usize) -> T + Sync>(n: usize, f: F) -> Vec<T> {
    let mut out: Vec<Option<T>> = (0..n).map(|_| None).collect();
    {
        let bounds = block_bounds(n);
        let mut rest: &mut [Option<T>] = &mut out;
        let mut pieces = Vec::with_capacity(bounds.len());
        let mut at = 0;
        for w in bounds.windows(2) {
            let (piece, tail) = rest.split_at_mut(w[1] - w[0]);
            pieces.push((w[0], piece));
            rest = tail;
            at = w[1];
        }
        debug_assert_eq!(at, n);
        let f = &f;
        if pieces.len() <= 1 {
            for (off, piece) in pieces {
                for (k, slot) in piece.iter_mut().enumerate() {
                    *slot = Some(f(off + k));
                }
            }
        } else {
            std::thread::scope(|s| {
                for (off, piece) in pieces {
                    s.spawn(move || {
                        for (k, slot) in piece.iter_mut().enumerate() {
                            *slot = Some(f(off + k));
                        }
                    });
                }
            });
        }
    }
    out.into_iter()
        .map(|v| v.expect("rayon shim: missing mapped value"))
        .collect()
}

/// Collection target of [`Map::collect`] (only `Vec<T>` is supported).
pub trait FromParallelIterator<T> {
    /// Build the collection from index-ordered results.
    fn from_ordered_vec(v: Vec<T>) -> Self;
}

impl<T> FromParallelIterator<T> for Vec<T> {
    fn from_ordered_vec(v: Vec<T>) -> Self {
        v
    }
}

/// Parallel iterator over `usize` indices (from a range).
pub struct IndexedParIter {
    start: usize,
    end: usize,
}

impl IndexedParIter {
    /// Apply `f` to every index in parallel.
    pub fn for_each<F: Fn(usize) + Sync>(self, f: F) {
        let start = self.start;
        run_partitioned(self.end.saturating_sub(start), |lo, hi| {
            for i in lo..hi {
                f(start + i);
            }
        });
    }

    /// Map every index through `f` (lazily; consume with `collect`).
    pub fn map<T, F: Fn(usize) -> T + Sync>(self, f: F) -> Map<F> {
        Map {
            start: self.start,
            end: self.end,
            f,
        }
    }
}

/// Lazy parallel map over an index range.
pub struct Map<F> {
    start: usize,
    end: usize,
    f: F,
}

impl<F> Map<F> {
    /// Evaluate in parallel, preserving order.
    pub fn collect<C, T>(self) -> C
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
        C: FromParallelIterator<T>,
    {
        let start = self.start;
        let f = self.f;
        C::from_ordered_vec(map_collect(self.end.saturating_sub(start), |i| f(start + i)))
    }

    /// Apply the mapped function for its effects only.
    pub fn for_each<T, G: Fn(T) + Sync>(self, g: G)
    where
        F: Fn(usize) -> T + Sync,
    {
        let start = self.start;
        let f = &self.f;
        run_partitioned(self.end.saturating_sub(start), |lo, hi| {
            for i in lo..hi {
                g(f(start + i));
            }
        });
    }
}

/// Conversion into a parallel iterator (ranges of `usize`).
pub trait IntoParallelIterator {
    /// The parallel iterator type.
    type Iter;
    /// Convert.
    fn into_par_iter(self) -> Self::Iter;
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Iter = IndexedParIter;
    fn into_par_iter(self) -> IndexedParIter {
        IndexedParIter {
            start: self.start,
            end: self.end.max(self.start),
        }
    }
}

/// Parallel shared iterator over slice elements.
pub struct ParIter<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Apply `f` to every element in parallel.
    pub fn for_each<F: Fn(&'a T) + Sync>(self, f: F) {
        let slice = self.slice;
        run_partitioned(slice.len(), |lo, hi| {
            for item in &slice[lo..hi] {
                f(item);
            }
        });
    }

    /// Pair every element with its index.
    pub fn enumerate(self) -> EnumParIter<'a, T> {
        EnumParIter { slice: self.slice }
    }
}

/// Enumerated variant of [`ParIter`].
pub struct EnumParIter<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> EnumParIter<'a, T> {
    /// Apply `f((index, &item))` in parallel.
    pub fn for_each<F: Fn((usize, &'a T)) + Sync>(self, f: F) {
        let slice = self.slice;
        run_partitioned(slice.len(), |lo, hi| {
            for (i, item) in slice[lo..hi].iter().enumerate() {
                f((lo + i, item));
            }
        });
    }
}

/// Split `items` into per-worker contiguous sub-slices (with global
/// offsets) and run `f` on each worker's share.
fn for_each_split<T, F>(items: &mut [T], f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    let n = items.len();
    if n == 0 {
        return;
    }
    let bounds = block_bounds(n);
    if bounds.len() <= 2 {
        f(0, items);
        return;
    }
    let mut pieces = Vec::with_capacity(bounds.len() - 1);
    let mut rest = items;
    for w in bounds.windows(2) {
        let (piece, tail) = rest.split_at_mut(w[1] - w[0]);
        pieces.push((w[0], piece));
        rest = tail;
    }
    let f = &f;
    std::thread::scope(|s| {
        for (off, piece) in pieces {
            s.spawn(move || f(off, piece));
        }
    });
}

/// Parallel exclusive iterator over slice elements.
pub struct ParIterMut<'a, T> {
    slice: &'a mut [T],
}

impl<'a, T: Send> ParIterMut<'a, T> {
    /// Apply `f` to every element in parallel.
    pub fn for_each<F: Fn(&mut T) + Sync>(self, f: F) {
        for_each_split(self.slice, |_, piece| {
            for item in piece.iter_mut() {
                f(item);
            }
        });
    }

    /// Pair every element with its index.
    pub fn enumerate(self) -> EnumParIterMut<'a, T> {
        EnumParIterMut { slice: self.slice }
    }
}

/// Enumerated variant of [`ParIterMut`].
pub struct EnumParIterMut<'a, T> {
    slice: &'a mut [T],
}

impl<'a, T: Send> EnumParIterMut<'a, T> {
    /// Apply `f((index, &mut item))` in parallel.
    pub fn for_each<F: Fn((usize, &mut T)) + Sync>(self, f: F) {
        for_each_split(self.slice, |off, piece| {
            for (i, item) in piece.iter_mut().enumerate() {
                f((off + i, item));
            }
        });
    }
}

/// Parallel iterator over mutable chunks of a slice.
pub struct ParChunksMut<'a, T> {
    slice: &'a mut [T],
    size: usize,
}

impl<'a, T: Send> ParChunksMut<'a, T> {
    /// Apply `f` to every chunk in parallel.
    pub fn for_each<F: Fn(&mut [T]) + Sync>(self, f: F) {
        self.enumerate().for_each(|(_, c)| f(c));
    }

    /// Pair every chunk with its chunk index.
    pub fn enumerate(self) -> EnumParChunksMut<'a, T> {
        EnumParChunksMut {
            slice: self.slice,
            size: self.size,
        }
    }
}

/// Enumerated variant of [`ParChunksMut`].
pub struct EnumParChunksMut<'a, T> {
    slice: &'a mut [T],
    size: usize,
}

impl<'a, T: Send> EnumParChunksMut<'a, T> {
    /// Apply `f((chunk_index, chunk))` in parallel.
    pub fn for_each<F: Fn((usize, &mut [T])) + Sync>(self, f: F) {
        let size = self.size;
        assert!(size > 0, "par_chunks_mut: chunk size must be positive");
        let len = self.slice.len();
        let n_chunks = len.div_ceil(size);
        if n_chunks == 0 {
            return;
        }
        let bounds = block_bounds(n_chunks);
        if bounds.len() <= 2 {
            for (i, chunk) in self.slice.chunks_mut(size).enumerate() {
                f((i, chunk));
            }
            return;
        }
        let mut pieces = Vec::with_capacity(bounds.len() - 1);
        let mut rest = self.slice;
        for w in bounds.windows(2) {
            let elems = (w[1] * size).min(len) - w[0] * size;
            let (piece, tail) = rest.split_at_mut(elems);
            pieces.push((w[0], piece));
            rest = tail;
        }
        let f = &f;
        std::thread::scope(|s| {
            for (chunk0, piece) in pieces {
                s.spawn(move || {
                    for (i, chunk) in piece.chunks_mut(size).enumerate() {
                        f((chunk0 + i, chunk));
                    }
                });
            }
        });
    }
}

/// `.par_iter()` on shared slices.
pub trait IntoParallelRefIterator<'a> {
    /// Element type.
    type Item;
    /// Parallel iterator type.
    type Iter;
    /// Convert.
    fn par_iter(&'a self) -> Self::Iter;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    type Iter = ParIter<'a, T>;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { slice: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    type Iter = ParIter<'a, T>;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { slice: self }
    }
}

/// `.par_iter_mut()` on exclusive slices.
pub trait IntoParallelRefMutIterator<'a> {
    /// Element type.
    type Item;
    /// Parallel iterator type.
    type Iter;
    /// Convert.
    fn par_iter_mut(&'a mut self) -> Self::Iter;
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for [T] {
    type Item = &'a mut T;
    type Iter = ParIterMut<'a, T>;
    fn par_iter_mut(&'a mut self) -> ParIterMut<'a, T> {
        ParIterMut { slice: self }
    }
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for Vec<T> {
    type Item = &'a mut T;
    type Iter = ParIterMut<'a, T>;
    fn par_iter_mut(&'a mut self) -> ParIterMut<'a, T> {
        ParIterMut { slice: self }
    }
}

/// `.par_chunks_mut(n)` on exclusive slices.
pub trait ParallelSliceMut<T: Send> {
    /// Parallel iterator over mutable `chunk_size`-sized chunks.
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T> {
        ParChunksMut {
            slice: self,
            size: chunk_size,
        }
    }
}

/// Common imports, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{
        IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator,
        ParallelSliceMut,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn range_map_collect_preserves_order() {
        let v: Vec<usize> = (0..1000).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(v.len(), 1000);
        assert!(v.iter().enumerate().all(|(i, &x)| x == 2 * i));
    }

    #[test]
    fn range_for_each_visits_every_index_once() {
        let sum = AtomicU64::new(0);
        (0..257).into_par_iter().for_each(|i| {
            sum.fetch_add(i as u64, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 256 * 257 / 2);
    }

    #[test]
    fn par_chunks_mut_enumerate_covers_slice() {
        let mut data = vec![0usize; 103];
        data.par_chunks_mut(10).enumerate().for_each(|(i, chunk)| {
            for (k, v) in chunk.iter_mut().enumerate() {
                *v = i * 10 + k;
            }
        });
        assert!(data.iter().enumerate().all(|(i, &x)| x == i));
    }

    #[test]
    fn par_iter_mut_enumerate() {
        let mut data = vec![0usize; 37];
        data.par_iter_mut().enumerate().for_each(|(i, v)| *v = i + 1);
        assert!(data.iter().enumerate().all(|(i, &x)| x == i + 1));
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = super::join(|| 1 + 1, || "x".to_string() + "y");
        assert_eq!(a, 2);
        assert_eq!(b, "xy");
    }

    #[test]
    fn empty_inputs_are_noops() {
        let v: Vec<usize> = (5..5).into_par_iter().map(|i| i).collect();
        assert!(v.is_empty());
        let mut e: Vec<u8> = Vec::new();
        e.par_chunks_mut(4).for_each(|_| panic!("no chunks expected"));
    }
}
