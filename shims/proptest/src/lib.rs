//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset this workspace's property tests use: the
//! [`Strategy`] trait with `prop_map`/`prop_flat_map`, range and tuple
//! strategies, [`collection::vec`], the `proptest!` macro with
//! `#![proptest_config(..)]`, and `prop_assert!`/`prop_assert_eq!`/
//! `prop_assume!`. Unlike real proptest there is no shrinking and no
//! failure persistence: inputs are drawn from a deterministic
//! per-test-name stream, so failures reproduce by re-running the test.

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use rand::rngs::StdRng;
    use rand::Rng;

    /// A recipe for generating values of one type.
    pub trait Strategy: Sized {
        /// The generated type.
        type Value;

        /// Draw one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Transform generated values.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F> {
            Map { inner: self, f }
        }

        /// Generate a value, then a dependent strategy from it.
        fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F> {
            FlatMap { inner: self, f }
        }
    }

    /// Mapped strategy (see [`Strategy::prop_map`]).
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut StdRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Dependent strategy (see [`Strategy::prop_flat_map`]).
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn generate(&self, rng: &mut StdRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// Always-the-same-value strategy.
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    impl<T: rand::SampleUniform + Copy> Strategy for std::ops::Range<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            rng.gen_range(self.start..self.end)
        }
    }

    macro_rules! impl_inclusive_int {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(*self.start()..*self.end() + 1)
                }
            }
        )*};
    }
    impl_inclusive_int!(usize, u64, u32, i64, i32);

    impl<A: Strategy, B: Strategy> Strategy for (A, B) {
        type Value = (A::Value, B::Value);
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            (self.0.generate(rng), self.1.generate(rng))
        }
    }

    impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
        type Value = (A::Value, B::Value, C::Value);
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            (
                self.0.generate(rng),
                self.1.generate(rng),
                self.2.generate(rng),
            )
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Length specification for [`vec`]: a fixed `usize` or a range.
    pub trait SizeRange {
        /// Draw one length.
        fn pick(&self, rng: &mut StdRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut StdRng) -> usize {
            *self
        }
    }

    impl SizeRange for std::ops::Range<usize> {
        fn pick(&self, rng: &mut StdRng) -> usize {
            rng.gen_range(self.start..self.end)
        }
    }

    impl SizeRange for std::ops::RangeInclusive<usize> {
        fn pick(&self, rng: &mut StdRng) -> usize {
            rng.gen_range(*self.start()..*self.end() + 1)
        }
    }

    /// Strategy for `Vec`s of `element` values with `len` entries.
    pub fn vec<S: Strategy, L: SizeRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }

    /// See [`vec`].
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = self.len.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! Runner configuration.

    /// Subset of proptest's run configuration: the case count.
    #[derive(Debug, Clone, Copy)]
    pub struct ProptestConfig {
        /// Accepted (non-rejected) cases to run per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` accepted cases.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 32 }
        }
    }

    /// Deterministic per-test-name input stream.
    pub fn deterministic_rng(test_name: &str) -> rand::rngs::StdRng {
        use rand::SeedableRng;
        // FNV-1a over the test name: distinct, reproducible streams.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        rand::rngs::StdRng::seed_from_u64(h)
    }
}

/// Assert inside a property (maps to `assert!`; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Assert equality inside a property (maps to `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Reject the current case (it is not counted toward the case total).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($rest:tt)*)?) => {
        if !($cond) {
            return false;
        }
    };
}

/// Define property tests: each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]` running the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@munch ($cfg); $($rest)*);
    };
    (@munch ($cfg:expr); $(#[$meta:meta])* fn $name:ident ( $($arg:pat in $strat:expr),+ $(,)? ) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            let mut __rng = $crate::test_runner::deterministic_rng(stringify!($name));
            let mut __accepted: u32 = 0;
            let mut __tries: u32 = 0;
            while __accepted < __config.cases && __tries < __config.cases * 20 + 100 {
                __tries += 1;
                $(
                    let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                )+
                // The closure is what lets prop_assume! reject a case
                // via early return — not redundant.
                #[allow(clippy::redundant_closure_call)]
                let __ok = (move || -> bool { $body true })();
                if __ok {
                    __accepted += 1;
                }
            }
        }
        $crate::proptest!(@munch ($cfg); $($rest)*);
    };
    (@munch ($cfg:expr);) => {};
    ($($rest:tt)*) => {
        $crate::proptest!(@munch ($crate::test_runner::ProptestConfig::default()); $($rest)*);
    };
}

/// Common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..10, y in 1usize..=4) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((1..=4).contains(&y));
        }

        #[test]
        fn flat_map_dependent_lengths(v in (1usize..=5).prop_flat_map(|n| crate::collection::vec(0.0f64..1.0, n))) {
            prop_assert!(!v.is_empty() && v.len() <= 5);
            prop_assert!(v.iter().all(|x| (0.0..1.0).contains(x)));
        }

        #[test]
        fn assume_rejects_without_failing(n in 0usize..10) {
            prop_assume!(n >= 5);
            prop_assert!(n >= 5);
        }

        #[test]
        fn tuple_and_pattern_args((a, b) in (0u64..5, 0u64..5)) {
            prop_assert!(a < 5 && b < 5);
        }
    }
}
