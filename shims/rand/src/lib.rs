//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this local shim
//! provides the (small) subset of the `rand 0.8` API this workspace
//! uses: [`SeedableRng::seed_from_u64`], [`Rng::gen_range`] over
//! primitive ranges, and [`distributions::Uniform`] sampling. The
//! generator behind [`rngs::StdRng`] is xoshiro256** seeded through
//! SplitMix64 — deterministic across platforms and runs, which is all
//! the reproduction's seeded experiments require (they prescribe
//! spectra, so no statistical property of the stream is load-bearing
//! beyond "well spread").

/// Core generator interface: a source of uniform random `u64`s.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from a half-open range.
pub trait SampleUniform: Sized + PartialOrd {
    /// Uniform draw from `[lo, hi)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        lo + unit * (hi - lo)
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as u128).wrapping_sub(lo as u128) as u64;
                // Modulo bias is irrelevant at the spans used here
                // (test-case shapes), and determinism matters more.
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(usize, u64, u32, i64, i32);

/// Convenience methods on any generator (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Uniform draw from a half-open range, e.g. `rng.gen_range(-1.0..1.0)`.
    fn gen_range<T: SampleUniform>(&mut self, range: std::ops::Range<T>) -> T {
        T::sample_range(self, range.start, range.end)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators constructible from seeds (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator (stands in for `rand`'s
    /// ChaCha-based `StdRng`; the workspace only relies on seeded
    /// reproducibility, not cryptographic quality).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    /// Alias — the shim has a single generator.
    pub type SmallRng = StdRng;

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed into the xoshiro state.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Distributions (subset of `rand::distributions`).
pub mod distributions {
    use super::{RngCore, SampleUniform};

    /// A distribution that can be sampled with any generator.
    pub trait Distribution<T> {
        /// Draw one value.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// Uniform distribution over `[lo, hi)`.
    #[derive(Debug, Clone, Copy)]
    pub struct Uniform<T> {
        lo: T,
        hi: T,
    }

    impl<T: SampleUniform + Copy> Uniform<T> {
        /// Uniform over the half-open range `[lo, hi)`.
        pub fn new(lo: T, hi: T) -> Self {
            Self { lo, hi }
        }
    }

    impl<T: SampleUniform + Copy> Distribution<T> for Uniform<T> {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T {
            T::sample_range(rng, self.lo, self.hi)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic_and_distinct() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<f64> = (0..8).map(|_| a.gen_range(0.0..1.0)).collect();
        let ys: Vec<f64> = (0..8).map(|_| b.gen_range(0.0..1.0)).collect();
        let zs: Vec<f64> = (0..8).map(|_| c.gen_range(0.0..1.0)).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
        assert!(xs.iter().all(|v| (0.0..1.0).contains(v)));
    }

    #[test]
    fn integer_ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = r.gen_range(3usize..17);
            assert!((3..17).contains(&v));
        }
    }

    #[test]
    fn f64_range_covers_span() {
        let mut r = StdRng::seed_from_u64(9);
        let draws: Vec<f64> = (0..512).map(|_| r.gen_range(-2.0..2.0)).collect();
        assert!(draws.iter().any(|v| *v < -1.0));
        assert!(draws.iter().any(|v| *v > 1.0));
        assert!(draws.iter().all(|v| (-2.0..2.0).contains(v)));
    }
}
